/**
 * @file
 * Memory-system unit tests: backing store, cache geometry, cache
 * presence/LRU/eviction, the transactional line annotations of both
 * nesting schemes, bus arbitration/occupancy, and FIFO resources.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "mem/backing_store.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "sim/task.hh"

using namespace tmsim;

TEST(BackingStore, ReadWriteAndBounds)
{
    BackingStore mem(1 << 20);
    mem.write(64, 0xDEADBEEF);
    EXPECT_EQ(mem.read(64), 0xDEADBEEFu);
    EXPECT_EQ(mem.read(72), 0u);
}

TEST(BackingStore, WatchAddrEnvParsesStrictly)
{
    // Valid addresses, all supported bases.
    EXPECT_EQ(watchAddrFromEnv("64"), 64u);
    EXPECT_EQ(watchAddrFromEnv("0x40"), 0x40u);
    EXPECT_EQ(watchAddrFromEnv("0"), 0u);

    // Unset or empty: watchpoint off, no warning.
    EXPECT_EQ(watchAddrFromEnv(nullptr), invalidAddr);
    EXPECT_EQ(watchAddrFromEnv(""), invalidAddr);

    // Garbage must disable the watchpoint, not watch address 0
    // (strtoull's silent fallback) or wrap around (negatives).
    EXPECT_EQ(watchAddrFromEnv("oops"), invalidAddr);
    EXPECT_EQ(watchAddrFromEnv("0x40zz"), invalidAddr);
    EXPECT_EQ(watchAddrFromEnv("-64"), invalidAddr);
    EXPECT_EQ(watchAddrFromEnv("99999999999999999999999"), invalidAddr);
}

TEST(BackingStore, AllocatorAlignsAndAdvances)
{
    BackingStore mem(1 << 20);
    Addr a = mem.allocate(100, 64);
    Addr b = mem.allocate(8, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
}

namespace {

/** Run @p fn under a fatal-trapping scope and expect it to fatal. */
template <typename Fn>
void
expectFatal(Fn&& fn)
{
    LogContext ctx;
    ctx.quiet = true;
    ctx.throwOnFatal = true;
    LogScope scope(ctx);
    EXPECT_THROW(fn(), FatalError);
}

} // namespace

TEST(BackingStore, AllocatorRejectsWrappingSizes)
{
    // `base + n_bytes` would wrap for sizes near UINT64_MAX; a
    // wrapping comparison would admit the request and hand out a
    // bogus base instead of reporting exhaustion.
    BackingStore mem(1 << 20);
    expectFatal([&] { mem.allocate(~static_cast<Addr>(0), 8); });
    expectFatal([&] { mem.allocate(~static_cast<Addr>(0) - 32, 64); });

    // Alignment padding must not wrap either: an alignment boundary
    // beyond the end of memory makes the pad overshoot the remaining
    // bytes, which the pad check must catch before `base += pad`.
    BackingStore tight(1 << 20);
    expectFatal([&] { tight.allocate(8, 1 << 21); });

    // A fit that exactly reaches the top of memory still succeeds.
    BackingStore exact(1 << 20);
    Addr base = exact.allocate((1 << 20) - 64, 64);
    EXPECT_EQ(base, 64u);
    EXPECT_EQ(exact.allocate(0, 8), static_cast<Addr>(1) << 20);
}

using BackingStoreDeathTest = ::testing::Test;

TEST(BackingStoreDeathTest, BoundsCheckDoesNotWrap)
{
    // `addr + wordBytes` wraps for addresses near UINT64_MAX; the
    // subtraction-form check must reject them instead of reading
    // host memory at a wrapped index.
    BackingStore mem(1 << 20);
    EXPECT_DEATH((void)mem.read(~static_cast<Addr>(0) - 7),
                 "out-of-range");
    EXPECT_DEATH(mem.write(~static_cast<Addr>(0) - 7, 1),
                 "out-of-range");
    EXPECT_DEATH((void)mem.read(1 << 20), "out-of-range");
    // The last word in range is still accessible.
    mem.write((1 << 20) - 8, 7);
    EXPECT_EQ(mem.read((1 << 20) - 8), 7u);
}

TEST(BackingStore, WatchAddrIsPerInstance)
{
    // The watchpoint used to be latched in a function-local static on
    // first write: the first store constructed owned it forever and
    // later instances silently shared (or lost) it. It is now plain
    // per-instance state.
    BackingStore a(1 << 20);
    BackingStore b(1 << 20);
    EXPECT_EQ(a.watchAddr(), b.watchAddr());

    a.setWatchAddr(128);
    EXPECT_EQ(a.watchAddr(), 128u);
    EXPECT_NE(b.watchAddr(), 128u);

    b.setWatchAddr(256);
    EXPECT_EQ(a.watchAddr(), 128u);
    EXPECT_EQ(b.watchAddr(), 256u);

    a.setWatchAddr(invalidAddr);
    EXPECT_EQ(a.watchAddr(), invalidAddr);
    EXPECT_EQ(b.watchAddr(), 256u);
}

TEST(BackingStore, SparseReadsDoNotMaterializeChunks)
{
    BackingStore mem(1 << 20, StoreMode::Sparse);
    EXPECT_EQ(mem.mode(), StoreMode::Sparse);

    // Reads of untouched memory return zero without allocating.
    EXPECT_EQ(mem.read(64), 0u);
    EXPECT_EQ(mem.read((1 << 20) - 8), 0u);
    EXPECT_EQ(mem.touchedChunks(), 0u);
    EXPECT_EQ(mem.hostWordsAllocated(), 0u);

    // First write materializes exactly one chunk; the rest of that
    // chunk reads as zero (value-initialized).
    mem.write(64, 0xABCD);
    EXPECT_EQ(mem.touchedChunks(), 1u);
    EXPECT_EQ(mem.hostWordsAllocated(), mem.chunkBytes() / wordBytes);
    EXPECT_EQ(mem.read(64), 0xABCDu);
    EXPECT_EQ(mem.read(72), 0u);

    // A second write in the same chunk allocates nothing new.
    mem.write(mem.chunkBytes() - 8, 1);
    EXPECT_EQ(mem.touchedChunks(), 1u);
    // One past the chunk boundary starts a second chunk.
    mem.write(mem.chunkBytes(), 2);
    EXPECT_EQ(mem.touchedChunks(), 2u);
}

TEST(BackingStore, SparseHugeAddressSpaceAllocatesOnlyTouchedChunks)
{
    // A terabyte of simulated memory must cost host memory
    // proportional to the chunks actually written, not the address
    // space. (Dense mode would need 128 GiB of host words here.)
    const Addr tib = static_cast<Addr>(1) << 40;
    BackingStore mem(tib, StoreMode::Sparse);
    EXPECT_EQ(mem.hostWordsAllocated(), 0u);

    // Scatter writes across the whole space, far apart: one chunk
    // each.
    const int n = 11;
    for (int i = 0; i < n; ++i)
        mem.write(static_cast<Addr>(i) * (tib / n) & ~static_cast<Addr>(7),
                  i + 1);
    EXPECT_EQ(mem.touchedChunks(), static_cast<std::size_t>(n));
    EXPECT_EQ(mem.hostWordsAllocated(),
              n * (mem.chunkBytes() / wordBytes));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(mem.read(static_cast<Addr>(i) * (tib / n) &
                           ~static_cast<Addr>(7)),
                  static_cast<Word>(i + 1));
}

TEST(BackingStore, SparseAndDenseAgreeOnMixedTraffic)
{
    // Same traffic, both representations, same architectural result.
    BackingStore sparse(1 << 18, StoreMode::Sparse);
    BackingStore dense(1 << 18, StoreMode::Dense);
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % (1 << 18)) & ~static_cast<Addr>(7);
        if (x & 1) {
            sparse.write(addr, x);
            dense.write(addr, x);
        } else {
            EXPECT_EQ(sparse.read(addr), dense.read(addr));
        }
    }
    for (Addr a = 0; a < (1 << 18); a += 8)
        ASSERT_EQ(sparse.read(a), dense.read(a)) << "addr " << a;
}

TEST(CacheGeometry, DerivedParameters)
{
    CacheGeometry g{32 * 1024, 32, 4, 1};
    EXPECT_EQ(g.numSets(), 256);
    EXPECT_EQ(g.wordsPerLine(), 4);
    EXPECT_EQ(g.lineAddr(0x1234), 0x1220u);
    g.validate("test");
}

namespace {

Cache
makeCache(NestScheme scheme, StatsRegistry& stats, int assoc = 2,
          Addr size = 1024)
{
    return Cache("test", CacheGeometry{size, 32, assoc, 1}, scheme, 4,
                 stats);
}

} // namespace

TEST(Cache, HitMissAndFill)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats);
    EXPECT_FALSE(c.lookup(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.lookup(0x100));
    EXPECT_EQ(stats.value("test.hits"), 1u);
    EXPECT_EQ(stats.value("test.misses"), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    StatsRegistry stats;
    // 1024B / 32B / 2-way = 16 sets; addresses 32*16 apart share a set.
    Cache c = makeCache(NestScheme::Associativity, stats);
    const Addr stride = 32 * 16;
    c.fill(0);
    c.fill(stride);
    c.lookup(0); // 0 is now MRU
    c.fill(2 * stride);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(stride)); // LRU victim
    EXPECT_EQ(stats.value("test.evictions"), 1u);
}

TEST(Cache, TransactionalVictimCountsAsOverflow)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats);
    const Addr stride = 32 * 16;
    c.markWrite(0, 1);
    c.markWrite(stride, 1);
    EvictInfo e = c.fill(2 * stride);
    EXPECT_TRUE(e.evicted);
    EXPECT_TRUE(e.transactional);
    EXPECT_EQ(stats.value("test.tx_overflows"), 1u);
}

TEST(Cache, MultiTrackingPerLevelBits)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::MultiTracking, stats);
    c.markRead(0x100, 1);
    c.markWrite(0x100, 2);
    EXPECT_TRUE(c.isRead(0x100, 1));
    EXPECT_FALSE(c.isRead(0x100, 2));
    EXPECT_TRUE(c.isWritten(0x100, 2));
    EXPECT_EQ(c.versionCount(0x100), 1); // single line, multiple bits

    c.mergeLevelDown(2);
    EXPECT_TRUE(c.isWritten(0x100, 1));
    EXPECT_FALSE(c.isWritten(0x100, 2));

    c.clearLevel(1);
    EXPECT_FALSE(c.hasTxMeta(0x100));
    EXPECT_TRUE(c.contains(0x100));
}

TEST(Cache, AssociativityVersionReplication)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats, 4);
    c.markWrite(0x100, 1);
    c.markWrite(0x100, 2); // child writes too: new version
    EXPECT_EQ(c.versionCount(0x100), 2);
    EXPECT_EQ(stats.value("test.version_replications"), 1u);
    EXPECT_TRUE(c.isWritten(0x100, 1));
    EXPECT_TRUE(c.isWritten(0x100, 2));

    // Closed commit merges the child version into the parent's.
    c.mergeLevelDown(2);
    EXPECT_EQ(c.versionCount(0x100), 1);
    EXPECT_TRUE(c.isWritten(0x100, 1));
}

TEST(Cache, AssociativityRollbackKeepsReadOnlyData)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats, 4);
    c.markRead(0x100, 1); // clean read
    c.markWrite(0x140, 1); // dirty speculative
    c.clearLevel(1);
    // Committed (clean) data survives the rollback...
    EXPECT_TRUE(c.contains(0x100));
    // ...speculative data does not.
    EXPECT_FALSE(c.contains(0x140));
}

TEST(Cache, OpenCommitKeepsDataDropsAnnotations)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats, 4);
    c.markWrite(0x100, 2);
    c.commitOpenLevel(2);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_FALSE(c.hasTxMeta(0x100));
}

TEST(Cache, InvalidateNonSpecLeavesTxLines)
{
    StatsRegistry stats;
    Cache c = makeCache(NestScheme::Associativity, stats, 4);
    c.fill(0x100);
    c.markWrite(0x140, 1);
    c.invalidateNonSpec(0x100);
    c.invalidateNonSpec(0x140);
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x140)); // speculative copies are immune
}

TEST(FifoResource, GrantsInOrder)
{
    EventQueue eq;
    FifoResource res(eq);
    std::vector<int> order;

    auto user = [&](int id, Cycles hold) -> SimTask {
        co_await res.acquire();
        order.push_back(id);
        co_await Delay{eq, hold};
        res.release();
    };

    SimTask a = user(1, 10);
    SimTask b = user(2, 10);
    SimTask c = user(3, 10);
    a.start();
    b.start();
    c.start();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(a.done() && b.done() && c.done());
    EXPECT_FALSE(res.busy());
}

TEST(Bus, ContentionSerialisesTransfers)
{
    EventQueue eq;
    StatsRegistry stats;
    Bus bus(eq, BusConfig{}, stats);

    Tick aDone = 0, bDone = 0;
    auto xfer = [&](Tick& done) -> SimTask {
        co_await bus.occupy(8);
        done = eq.curTick();
    };
    SimTask a = xfer(aDone);
    SimTask b = xfer(bDone);
    a.start();
    b.start();
    eq.run();
    // Second transfer waits for the first: done times differ by at
    // least the occupancy.
    EXPECT_GE(bDone, aDone + 8);
    EXPECT_EQ(stats.value("bus.transfers"), 2u);
    EXPECT_GE(stats.value("bus.busy_cycles"), 16u);
}

TEST(Bus, LineFetchOverlapsDramWithOtherTraffic)
{
    EventQueue eq;
    StatsRegistry stats;
    BusConfig cfg;
    Bus bus(eq, cfg, stats);

    // Two concurrent line fetches: split transactions overlap the DRAM
    // latency, so the total is far less than 2x a serial fetch.
    Tick t0 = 0, t1 = 0;
    auto fetch = [&](Tick& done) -> SimTask {
        co_await bus.lineFetch(32);
        done = eq.curTick();
    };
    SimTask a = fetch(t0);
    SimTask b = fetch(t1);
    a.start();
    b.start();
    eq.run();
    Tick serialEstimate = 2 * (cfg.arbitrationLatency + 1 +
                               cfg.memoryLatency + 2);
    EXPECT_LT(std::max(t0, t1), serialEstimate);
}
