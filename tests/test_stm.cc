/**
 * @file
 * Unit tests of the native STM backend (src/stm): ISA semantics
 * (two-phase commit, closed-nested merge, open-nested early commit,
 * imld/imst/imstid, release), handler stacks, conflict detection and
 * snapshot extension via hand-scheduled cross-thread interleavings,
 * naked-access serialization keys, and the hang watchdog. Everything
 * here runs single-host-threaded with explicit interleavings, so the
 * outcomes are deterministic (the genuinely concurrent coverage lives
 * in tools/tmsim_diff).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/stats.hh"
#include "stm/orec_table.hh"
#include "stm/stm_runtime.hh"
#include "stm/stm_thread.hh"
#include "workloads/zipf.hh"

using namespace tmsim;

namespace {

/** Runtime with a heap slice carved out for direct-address tests. */
struct StmFixture
{
    StmRuntime rt;
    Addr base;

    StmFixture() : base(rt.allocate(64 * wordBytes))
    {
        for (int i = 0; i < 64; ++i)
            rt.write(addr(i), 100 + static_cast<Word>(i));
        rt.armWatchdog();
    }

    Addr addr(int slot) const
    {
        return base + static_cast<Addr>(slot) * wordBytes;
    }
};

} // namespace

TEST(Stm, CommitPublishesBufferedWrites)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        EXPECT_EQ(th.txLoad(f.addr(0)), 100u);
        th.txStore(f.addr(0), 42);
        // Lazy versioning: memory unchanged until xcommit.
        EXPECT_EQ(f.rt.read(f.addr(0)), 100u);
        // Read-your-write through the redo log.
        EXPECT_EQ(th.txLoad(f.addr(0)), 42u);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(o.retries, 0);
    EXPECT_EQ(f.rt.read(f.addr(0)), 42u);
    EXPECT_EQ(t.stats().commits, 1u);
}

TEST(Stm, VoluntaryAbortDiscardsWritesAndReportsCode)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.txStore(f.addr(1), 7);
        th.xabort(0x33);
    });
    EXPECT_FALSE(o.committed());
    EXPECT_EQ(o.abortCode, 0x33u);
    EXPECT_EQ(f.rt.read(f.addr(1)), 101u);
    EXPECT_EQ(t.stats().abortsVoluntary, 1u);
    EXPECT_FALSE(t.inTx());
}

TEST(Stm, ClosedNestMergesIntoParentAndCommitsOnce)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.txStore(f.addr(2), 1);
        const StmTxOutcome inner = th.atomic([&](StmThread& in) {
            // Cross-level read-your-write: sees the parent's store.
            EXPECT_EQ(in.txLoad(f.addr(2)), 1u);
            in.txStore(f.addr(3), 2);
        });
        EXPECT_TRUE(inner.committed());
        // Child committed into the parent, not into memory.
        EXPECT_EQ(f.rt.read(f.addr(3)), 103u);
        EXPECT_EQ(th.txLoad(f.addr(3)), 2u);
        EXPECT_EQ(th.depth(), 1);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(f.rt.read(f.addr(2)), 1u);
    EXPECT_EQ(f.rt.read(f.addr(3)), 2u);
    // Two level starts but one memory commit (the outermost); the
    // closed child merged instead of committing.
    EXPECT_EQ(t.stats().starts, 2u);
    EXPECT_EQ(t.stats().commits, 1u);
    EXPECT_EQ(t.stats().openCommits, 0u);
}

TEST(Stm, OpenNestCommitsEarlyAndSurvivesOuterAbort)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.txStore(f.addr(4), 11);
        const StmTxOutcome inner = th.atomicOpen([&](StmThread& in) {
            in.txStore(f.addr(5), 22);
        });
        EXPECT_TRUE(inner.committed());
        // Open-nested commit is durable immediately...
        EXPECT_EQ(f.rt.read(f.addr(5)), 22u);
        th.xabort();
    });
    EXPECT_FALSE(o.committed());
    // ...and survives the enclosing abort; the outer store does not.
    EXPECT_EQ(f.rt.read(f.addr(5)), 22u);
    EXPECT_EQ(f.rt.read(f.addr(4)), 104u);
    EXPECT_EQ(t.stats().openCommits, 1u);
}

TEST(Stm, CommitHandlersRunOnOutermostCommitInOrder)
{
    StmFixture f;
    StmThread t(f.rt, 0);
    std::vector<Word> order;

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.onCommit([&](StmThread&, const std::vector<Word>& a) {
            order.push_back(a[0]);
        }, {1});
        const StmTxOutcome inner = th.atomic([&](StmThread& in) {
            // Registered in a closed child: deferred to the outermost
            // commit (the merge keeps it on the stack).
            in.onCommit([&](StmThread&, const std::vector<Word>& a) {
                order.push_back(a[0]);
            }, {2});
        });
        EXPECT_TRUE(inner.committed());
        EXPECT_TRUE(order.empty());
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(order, (std::vector<Word>{1, 2}));
    EXPECT_EQ(t.stats().commitHandlerRuns, 2u);
}

TEST(Stm, CommitHandlerWritesAreDurableViaImstid)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.onCommit([&](StmThread& h, const std::vector<Word>& a) {
            // Runs between xvalidate and xcommit, per the paper's
            // two-phase protocol: immediate stores are safe here.
            h.imstid(a[0], a[1]);
        }, {f.addr(6), 77});
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(f.rt.read(f.addr(6)), 77u);
}

TEST(Stm, AbortHandlersRunNewestFirstOnXabort)
{
    StmFixture f;
    StmThread t(f.rt, 0);
    std::vector<Word> order;

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.onAbort([&](StmThread&, const std::vector<Word>& a) {
            order.push_back(a[0]);
        }, {1});
        th.onAbort([&](StmThread&, const std::vector<Word>& a) {
            order.push_back(a[0]);
        }, {2});
        th.xabort();
    });
    EXPECT_FALSE(o.committed());
    EXPECT_EQ(order, (std::vector<Word>{2, 1}));
    EXPECT_EQ(t.stats().abortHandlerRuns, 2u);
}

TEST(Stm, InnerXabortOnlyAbortsTheInnermostLevel)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.txStore(f.addr(7), 1);
        const StmTxOutcome inner = th.atomic([&](StmThread& in) {
            in.txStore(f.addr(8), 2);
            in.xabort(9);
        });
        EXPECT_FALSE(inner.committed());
        EXPECT_EQ(inner.abortCode, 9u);
        EXPECT_EQ(th.depth(), 1);
        // The aborted child's store is gone; the parent's is intact.
        EXPECT_EQ(th.txLoad(f.addr(8)), 108u);
        EXPECT_EQ(th.txLoad(f.addr(7)), 1u);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(f.rt.read(f.addr(7)), 1u);
    EXPECT_EQ(f.rt.read(f.addr(8)), 108u);
}

TEST(Stm, ImstIsImmediateAndUndoneOnAbort)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.imst(f.addr(9), 5);
        // Immediate: visible in memory before any commit.
        EXPECT_EQ(f.rt.read(f.addr(9)), 5u);
        EXPECT_EQ(th.imld(f.addr(9)), 5u);
        th.imst(f.addr(9), 6);
        th.imstid(f.addr(10), 8); // idempotent: no undo kept
        th.xabort();
    });
    EXPECT_FALSE(o.committed());
    // imst undo restored FILO back to the pre-tx value; imstid stays.
    EXPECT_EQ(f.rt.read(f.addr(9)), 109u);
    EXPECT_EQ(f.rt.read(f.addr(10)), 8u);
}

TEST(Stm, ImstSurvivesCommitWithoutUndo)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        th.imst(f.addr(11), 3);
        const StmTxOutcome inner = th.atomic([&](StmThread& in) {
            in.imst(f.addr(12), 4); // undo merges to the parent
        });
        EXPECT_TRUE(inner.committed());
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(f.rt.read(f.addr(11)), 3u);
    EXPECT_EQ(f.rt.read(f.addr(12)), 4u);
}

TEST(Stm, ConflictingWriteTriggersViolationAndRetry)
{
    StmFixture f;
    StmThread t1(f.rt, 0);
    StmThread t2(f.rt, 1);

    int attempts = 0;
    const StmTxOutcome o = t1.atomic([&](StmThread& th) {
        ++attempts;
        const Word v = th.txLoad(f.addr(13));
        if (attempts == 1) {
            // Interleaved committed writer invalidates the read.
            t2.nakedStore(f.addr(13), 999);
        }
        th.txStore(f.addr(14), v);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(o.retries, 1);
    EXPECT_EQ(t1.stats().violations, 1u);
    // The retry observed the new value.
    EXPECT_EQ(f.rt.read(f.addr(14)), 999u);
}

TEST(Stm, ViolationHandlerRunsBeforeRollback)
{
    StmFixture f;
    StmThread t1(f.rt, 0);
    StmThread t2(f.rt, 1);

    int handlerRuns = 0;
    int attempts = 0;
    const StmTxOutcome o = t1.atomic([&](StmThread& th) {
        ++attempts;
        th.onViolation(
            [&](StmThread&, const StmViolationInfo& info,
                const std::vector<Word>&) {
                ++handlerRuns;
                EXPECT_EQ(info.vaddr, f.addr(15));
                EXPECT_EQ(info.targetLevel, 1);
                return StmVioAction::Proceed;
            });
        const Word v = th.txLoad(f.addr(15));
        if (attempts == 1)
            t2.nakedStore(f.addr(15), 1);
        th.txStore(f.addr(16), v);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(handlerRuns, 1);
    EXPECT_EQ(t1.stats().violationHandlerRuns, 1u);
}

TEST(Stm, ReleaseDropsWordFromReadSet)
{
    StmFixture f;
    StmThread t1(f.rt, 0);
    StmThread t2(f.rt, 1);

    int attempts = 0;
    const StmTxOutcome o = t1.atomic([&](StmThread& th) {
        ++attempts;
        (void)th.txLoad(f.addr(17));
        th.release(f.addr(17));
        // The same overwrite that forced a retry above is now
        // invisible to validation: the read was released.
        t2.nakedStore(f.addr(17), 555);
        th.txStore(f.addr(18), 1);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(attempts, 1);
    EXPECT_EQ(o.retries, 0);
    EXPECT_EQ(t1.stats().releases, 1u);
}

TEST(Stm, SnapshotExtendsPastConcurrentCommit)
{
    StmFixture f;
    StmThread t1(f.rt, 0);
    StmThread t2(f.rt, 1);

    const StmTxOutcome o = t1.atomic([&](StmThread& th) {
        (void)th.txLoad(f.addr(19));
        // An unrelated commit advances the clock past rv; the next
        // read finds a too-new orec and must extend the snapshot.
        t2.nakedStore(f.addr(20), 777);
        EXPECT_EQ(th.txLoad(f.addr(20)), 777u);
    });
    EXPECT_TRUE(o.committed());
    EXPECT_EQ(o.retries, 0);
    EXPECT_GE(t1.stats().snapshotExtensions, 1u);
}

TEST(Stm, NakedAccessesAreOrderedByCommitKeys)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const StmCommitInfo w1 = t.nakedStore(f.addr(21), 1);
    const auto [v1, r1] = t.nakedLoad(f.addr(21));
    const StmCommitInfo w2 = t.nakedStore(f.addr(21), 2);
    const auto [v2, r2] = t.nakedLoad(f.addr(21));

    EXPECT_EQ(v1, 1u);
    EXPECT_EQ(v2, 2u);
    // Writers carry phase 0 at their commit timestamp; readers carry
    // phase 1 at their snapshot. Sorting by (key, phase) linearizes
    // w1 < r1 < w2 < r2.
    EXPECT_EQ(w1.phase, 0);
    EXPECT_EQ(r1.phase, 1);
    EXPECT_LT(w1.key, w2.key);
    EXPECT_GE(r1.key, w1.key);
    EXPECT_LT(r1.key, w2.key);
    EXPECT_GE(r2.key, w2.key);
}

TEST(Stm, ReadOnlyCommitKeepsSnapshotKey)
{
    StmFixture f;
    StmThread t(f.rt, 0);

    const std::uint64_t before = f.rt.clock().now();
    const StmTxOutcome o = t.atomic([&](StmThread& th) {
        (void)th.txLoad(f.addr(22));
        (void)th.txLoad(f.addr(23));
    });
    EXPECT_TRUE(o.committed());
    // Read-only: no clock advance, serialized at rv with phase 1.
    EXPECT_EQ(f.rt.clock().now(), before);
    EXPECT_EQ(t.lastCommit().phase, 1);
    EXPECT_EQ(t.stats().roCommits, 1u);
}

TEST(Stm, StatsMergeUnderStmPrefix)
{
    StmFixture f;
    StmThread t(f.rt, 0);
    (void)t.atomic([&](StmThread& th) { th.txStore(f.addr(24), 1); });
    (void)t.nakedLoad(f.addr(24));

    StatsRegistry reg;
    f.rt.mergeStats(reg);
    EXPECT_EQ(reg.value("stm.starts"), 1u);
    EXPECT_EQ(reg.value("stm.commits"), 1u);
    EXPECT_EQ(reg.value("stm.naked_loads"), 1u);
}

TEST(Stm, WatchdogBreaksOutOfAStuckLock)
{
    StmConfig cfg;
    cfg.opTimeout = std::chrono::milliseconds(50);
    StmRuntime rt(cfg);
    const Addr a = rt.allocate(wordBytes);
    rt.armWatchdog();

    // Simulate a crashed owner: lock the orec and never release it.
    rt.orecs().of(a).store(orecLockedBy(5), std::memory_order_release);

    StmThread t(rt, 0);
    EXPECT_THROW((void)t.nakedStore(a, 1), StmHangError);
}

TEST(Stm, ShardedWarehousesWithOpenHandoffUnderRealThreads)
{
    // The production SPECjbb shape on the native backend: per-warehouse
    // shards (order-id counter + district YTD + order slots), real host
    // threads, Zipf-skewed deterministic warehouse selection, and an
    // open-nested cross-shard order-id handoff inside the outer
    // transaction. This is the genuinely concurrent leg (CI runs
    // test_stm under TSAN); everything above is hand-interleaved.
    constexpr int W = 8;
    constexpr int T = 4;
    constexpr int opsPerThread = 64;
    constexpr int totalOps = T * opsPerThread;

    StmRuntime rt;
    rt.armWatchdog();
    struct Shard
    {
        Addr localCtr;  // closed-nested order-id counter
        Addr remoteCtr; // order-ids drawn by open-nested handoffs
        Addr ytd;       // district year-to-date total
        Addr orders;    // totalOps slots, indexed by local order id
    };
    Shard shards[W];
    for (Shard& s : shards) {
        s.localCtr = rt.allocate(wordBytes);
        s.remoteCtr = rt.allocate(wordBytes);
        s.ytd = rt.allocate(wordBytes);
        s.orders = rt.allocate(totalOps * wordBytes);
    }
    // One handoff slot per global op index: an open-nested commit
    // survives an ancestor abort, so the retry must overwrite the same
    // slot, never append.
    const Addr handoff = rt.allocate(totalOps * wordBytes);

    // Deterministic, thread-count-independent selectors (the same
    // construction the simulator kernel uses).
    const ZipfGen whGen(W, 0.99);
    auto whFor = [&](int g) {
        return static_cast<int>(whGen.drawAt(
            static_cast<std::uint64_t>(g), 0x77));
    };
    auto isRemote = [](int g) { return g % 5 == 4; };
    auto destFor = [&](int g) {
        const int home = whFor(g);
        const int d = static_cast<int>(
            hashMix64(static_cast<std::uint64_t>(g) ^
                      (0xD5ull * 0x9e3779b97f4a7c15ull)) %
            (W - 1));
        return d >= home ? d + 1 : d;
    };
    auto amountFor = [](int g) {
        return static_cast<Word>(g % 100 + 1);
    };

    std::vector<std::thread> hosts;
    std::vector<std::string> errs(T);
    for (int tid = 0; tid < T; ++tid) {
        hosts.emplace_back([&, tid] {
            StmThread t(rt, tid);
            try {
                for (int i = 0; i < opsPerThread; ++i) {
                    const int g = tid * opsPerThread + i;
                    const Shard& home = shards[whFor(g)];
                    const StmTxOutcome o = t.atomic([&](StmThread& th) {
                        const Word oid = th.txLoad(home.localCtr);
                        th.txStore(home.localCtr, oid + 1);
                        th.txStore(home.orders +
                                       oid % totalOps * wordBytes,
                                   static_cast<Word>(g) + 1);
                        th.txStore(home.ytd,
                                   th.txLoad(home.ytd) + amountFor(g));
                        if (isRemote(g)) {
                            const Shard& dest = shards[destFor(g)];
                            (void)th; // handoff runs on the same thread
                            const StmTxOutcome io = t.atomicOpen(
                                [&](StmThread& ih) {
                                    const Word roid =
                                        ih.txLoad(dest.remoteCtr);
                                    ih.txStore(dest.remoteCtr,
                                               roid + 1);
                                    ih.txStore(
                                        handoff +
                                            static_cast<Addr>(g) *
                                                wordBytes,
                                        roid + 1);
                                });
                            if (!io.committed())
                                throw std::runtime_error(
                                    "open handoff did not commit");
                        }
                    });
                    if (!o.committed())
                        throw std::runtime_error(
                            "outer order did not commit");
                }
            } catch (const std::exception& e) {
                errs[static_cast<size_t>(tid)] = e.what();
            }
        });
    }
    for (std::thread& h : hosts)
        h.join();
    for (int tid = 0; tid < T; ++tid)
        EXPECT_EQ(errs[static_cast<size_t>(tid)], "") << "thread " << tid;

    // Host-side replay of the deterministic arrival sequence.
    Word expLocal[W] = {}, expRemote[W] = {}, expYtd[W] = {};
    for (int g = 0; g < totalOps; ++g) {
        expLocal[whFor(g)]++;
        expYtd[whFor(g)] += amountFor(g);
        if (isRemote(g))
            expRemote[destFor(g)]++;
    }
    int skewCheck = 0;
    for (int w = 0; w < W; ++w) {
        const Shard& s = shards[w];
        // Closed atomicity: counter and order slots moved together.
        EXPECT_EQ(rt.read(s.localCtr), expLocal[w]) << "warehouse " << w;
        EXPECT_EQ(rt.read(s.ytd), expYtd[w]) << "warehouse " << w;
        for (Word oid = 0; oid < expLocal[w]; ++oid)
            EXPECT_NE(rt.read(s.orders + oid % totalOps * wordBytes), 0u)
                << "warehouse " << w << " order " << oid;
        // Open nesting commits early and survives ancestor aborts, so
        // retried outers may burn extra remote ids — but never fewer
        // than the committed handoffs.
        EXPECT_GE(rt.read(s.remoteCtr), expRemote[w]) << "wh " << w;
        skewCheck += static_cast<int>(expLocal[w] > 0);
    }
    EXPECT_GT(skewCheck, 1); // Zipf at W=8 still spreads past wh 0
    // Every remote op owns exactly one handoff slot (idempotent under
    // retry), and ids fit the range the destination counter reached.
    for (int g = 0; g < totalOps; ++g) {
        const Word slot =
            rt.read(handoff + static_cast<Addr>(g) * wordBytes);
        if (!isRemote(g)) {
            EXPECT_EQ(slot, 0u) << "op " << g;
        } else {
            EXPECT_NE(slot, 0u) << "op " << g;
            EXPECT_LE(slot, rt.read(shards[destFor(g)].remoteCtr))
                << "op " << g;
        }
    }
}
