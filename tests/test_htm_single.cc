/**
 * @file
 * Single-threaded transactional semantics at the raw ISA level:
 * buffering, two-phase commit, aborts, undo-log versioning, immediate
 * operations, and early release (paper tables 1-2).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/tx_signals.hh"

using namespace tmsim;

namespace {

MachineConfig
smallConfig(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(HtmSingle, PlainLoadStoreRoundTrip)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.store(a, 1234);
        Word v = co_await c.load(a);
        EXPECT_EQ(v, 1234u);
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1234u);
}

TEST(HtmSingle, WriteBufferIsolatesUntilCommit)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 42);
        // Speculative: architectural memory still holds the old value.
        EXPECT_EQ(m.memory().read(a), 7u);
        // ...but the transaction reads its own write.
        Word v = co_await c.load(a);
        EXPECT_EQ(v, 42u);
        co_await c.xvalidate();
        EXPECT_EQ(m.memory().read(a), 7u); // still not committed
        co_await c.xcommit();
        EXPECT_EQ(m.memory().read(a), 42u);
    });
    m.run();
}

TEST(HtmSingle, AbortDiscardsSpeculativeState)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    Word seenCode = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 42);
        try {
            co_await c.xabort(99);
            ADD_FAILURE() << "xabort must unwind";
        } catch (const TxAbortSignal& s) {
            seenCode = s.code;
        }
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
    EXPECT_EQ(seenCode, 99u);
    EXPECT_EQ(m.memory().read(a), 7u);
}

TEST(HtmSingle, UndoLogWritesInPlaceAndRestores)
{
    Machine m(smallConfig(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 42);
        // Undo-log versioning: memory is updated in place...
        EXPECT_EQ(m.memory().read(a), 42u);
        EXPECT_EQ(c.htm().undoLogSize(), 1u);
        try {
            co_await c.xabort();
        } catch (const TxAbortSignal&) {
        }
        // ...and restored on rollback.
        EXPECT_EQ(m.memory().read(a), 7u);
        EXPECT_EQ(c.htm().undoLogSize(), 0u);
    });
    m.run();
}

TEST(HtmSingle, UndoLogCommitKeepsData)
{
    Machine m(smallConfig(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 5);
        co_await c.store(a, 6);
        co_await c.xvalidate();
        co_await c.xcommit();
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 6u);
}

TEST(HtmSingle, CommitRequiresValidate)
{
    auto attempt = [] {
        Machine m(smallConfig(HtmConfig::paperLazy(), 1));
        Addr a = m.memory().allocate(64);
        m.spawn(0, [&](Cpu& c) -> SimTask {
            co_await c.xbegin();
            co_await c.store(a, 1);
            co_await c.xcommit(); // missing xvalidate
        });
        m.run();
    };
    EXPECT_EXIT(attempt(), ::testing::ExitedWithCode(1),
                "xcommit without a preceding xvalidate");
}

TEST(HtmSingle, ImmediateLoadDoesNotJoinReadSet)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 11);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        Word v = co_await c.imld(a);
        EXPECT_EQ(v, 11u);
        EXPECT_EQ(c.htm().levelsReading(c.htm().lineOf(a)), 0u);
        Word w = co_await c.load(a);
        EXPECT_EQ(w, 11u);
        EXPECT_EQ(c.htm().levelsReading(c.htm().lineOf(a)), 1u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
}

TEST(HtmSingle, ImmediateStoreBypassesWriteSetButKeepsUndo)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 1);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.imst(a, 2);
        // Immediate: memory updated right away, no write-set entry.
        EXPECT_EQ(m.memory().read(a), 2u);
        EXPECT_EQ(c.htm().levelsWriting(c.htm().lineOf(a)), 0u);
        try {
            co_await c.xabort();
        } catch (const TxAbortSignal&) {
        }
        // imst keeps undo information: the store is rolled back.
        EXPECT_EQ(m.memory().read(a), 1u);
    });
    m.run();
}

TEST(HtmSingle, IdempotentImmediateStoreSurvivesRollback)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 1);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.imstid(a, 2);
        try {
            co_await c.xabort();
        } catch (const TxAbortSignal&) {
        }
        // imstid maintains no undo information.
        EXPECT_EQ(m.memory().read(a), 2u);
    });
    m.run();
}

TEST(HtmSingle, ReleaseDropsLineFromReadSet)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.load(a);
        Addr line = c.htm().lineOf(a);
        EXPECT_EQ(c.htm().levelsReading(line), 1u);
        co_await c.release(a);
        EXPECT_EQ(c.htm().levelsReading(line), 0u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
}

TEST(HtmSingle, ReadOnlyTransactionCommits)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 5);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        Word v = co_await c.load(a);
        EXPECT_EQ(v, 5u);
        co_await c.xvalidate();
        co_await c.xcommit();
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
}

TEST(HtmSingle, RegisterViolationManuallyThenDefaultRollback)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 3);
    int rollbacks = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 10);
        // Inject a conflict against level 1 as a committer would.
        c.htm().raiseViolation(0x1, c.htm().lineOf(a));
        try {
            co_await c.exec(1); // next instruction boundary delivers
            ADD_FAILURE() << "violation must unwind via TxRollback";
        } catch (const TxRollback& r) {
            EXPECT_EQ(r.targetLevel, 1);
            ++rollbacks;
        }
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
    EXPECT_EQ(rollbacks, 1);
    EXPECT_EQ(m.memory().read(a), 3u);
}

TEST(HtmSingle, InstructionAndCycleAccounting)
{
    Machine m(smallConfig(HtmConfig::paperLazy(), 1));
    m.spawn(0, [&](Cpu& c) -> SimTask {
        std::uint64_t before = c.instret();
        co_await c.exec(100);
        EXPECT_EQ(c.instret() - before, 100u);
    });
    Tick end = m.run();
    EXPECT_GE(end, 100u);
}

TEST(HtmSingle, StatsCountCommitsAndBegins)
{
    Machine m(smallConfig(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (int i = 0; i < 3; ++i) {
            co_await c.xbegin();
            co_await c.store(a, static_cast<Word>(i));
            co_await c.xvalidate();
            co_await c.xcommit();
        }
    });
    m.run();
    EXPECT_EQ(m.stats().value("cpu0.htm.begins"), 3u);
    EXPECT_EQ(m.stats().value("cpu0.htm.commits"), 3u);
    EXPECT_EQ(m.stats().value("cpu0.htm.rollbacks"), 0u);
}

TEST(HtmSingle, CapacityOverflowKeepsCorrectness)
{
    // Tiny caches force transactional lines to spill; the overflow
    // (virtualisation) path must preserve semantics and be visible in
    // the stats.
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.htm = HtmConfig::paperLazy();
    cfg.l1 = CacheGeometry{512, 32, 2, 1};  // 16 lines
    cfg.l2 = CacheGeometry{1024, 32, 2, 12}; // 32 lines
    cfg.memBytes = 8 * 1024 * 1024;
    Machine m(cfg);
    constexpr int words = 128; // way beyond L2 capacity
    Addr base = m.memory().allocate(words * 64, 64);

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        for (int i = 0; i < words; ++i) {
            Addr a = base + static_cast<Addr>(i) * 64;
            Word v = co_await c.load(a);
            co_await c.store(a, v + 1);
        }
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    for (int i = 0; i < words; ++i)
        EXPECT_EQ(m.memory().read(base + static_cast<Addr>(i) * 64), 1u);
    EXPECT_GT(m.stats().value("cpu0.l2.tx_overflows"), 0u);
}

TEST(HtmSingle, OverflowedTransactionStillDetectsConflicts)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.htm = HtmConfig::paperLazy();
    cfg.l1 = CacheGeometry{512, 32, 2, 1};
    cfg.l2 = CacheGeometry{1024, 32, 2, 12};
    cfg.memBytes = 8 * 1024 * 1024;
    Machine m(cfg);
    constexpr int words = 64;
    Addr base = m.memory().allocate(words * 64, 64);
    int rollbacks = 0;
    bool done = false;

    // Reader: touches far more lines than the caches hold, so early
    // lines have certainly overflowed by the time the writer commits.
    m.spawn(0, [&](Cpu& c) -> SimTask {
        while (!done) {
            co_await c.xbegin();
            try {
                for (int i = 0; i < words; ++i)
                    co_await c.load(base + static_cast<Addr>(i) * 64);
                co_await c.exec(2000);
                co_await c.xvalidate();
                co_await c.xcommit();
                done = true;
            } catch (const TxRollback&) {
                ++rollbacks;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(4000); // after the reader's first sweep
        co_await c.xbegin();
        co_await c.store(base, 42); // the reader's FIRST (overflowed) line
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    // The conflict on the overflowed line must still be caught.
    EXPECT_GE(rollbacks, 1);
}
