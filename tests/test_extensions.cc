/**
 * @file
 * Tests for the optional/extension features: word-granularity conflict
 * tracking (paper 6.3.1), safe early release under word granularity
 * (paper 4.7), tryatomic-style alternate paths (atomicOrElse), the
 * retry-backoff configuration, and open-nested reductions with
 * compensation (the mp3d ablation path).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine.hh"
#include "core/tx_signals.hh"
#include "runtime/tx_thread.hh"
#include "workloads/kernel_mp3d.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 8 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(WordGranularity, FalseSharingDoesNotConflict)
{
    HtmConfig htm = HtmConfig::paperLazy();
    htm.granularity = TrackGranularity::Word;
    Machine m(config(htm));
    Addr base = m.memory().allocate(64); // both words on ONE line
    Addr w0 = base, w1 = base + 8;

    for (int i = 0; i < 2; ++i) {
        Addr mine = i == 0 ? w0 : w1;
        m.spawn(i, [&, mine](Cpu& c) -> SimTask {
            co_await c.xbegin();
            Word v = co_await c.load(mine);
            co_await c.exec(800); // overlap the two transactions
            co_await c.store(mine, v + 7);
            co_await c.xvalidate();
            co_await c.xcommit();
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(w0), 7u);
    EXPECT_EQ(m.memory().read(w1), 7u);
    EXPECT_EQ(m.stats().sum("cpu*.htm.rollbacks"), 0u);
}

TEST(WordGranularity, TrueSharingStillConflicts)
{
    HtmConfig htm = HtmConfig::paperLazy();
    htm.granularity = TrackGranularity::Word;
    Machine m(config(htm));
    Addr a = m.memory().allocate(64);
    constexpr int iters = 30;

    for (int t = 0; t < 2; ++t) {
        m.spawn(t, [&](Cpu& c) -> SimTask {
            for (int i = 0; i < iters; ++i) {
                for (;;) {
                    co_await c.xbegin();
                    try {
                        Word v = co_await c.load(a);
                        co_await c.exec(10);
                        co_await c.store(a, v + 1);
                        co_await c.xvalidate();
                        co_await c.xcommit();
                        break;
                    } catch (const TxRollback&) {
                    }
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(a), static_cast<Word>(2 * iters));
}

TEST(WordGranularity, ReleaseIsWordPrecise)
{
    // Paper 4.7: with line-granular sets, releasing a word address
    // cannot safely release the line. With word-granular sets it can:
    // releasing word A keeps the subscription on word B of the same
    // line.
    HtmConfig htm = HtmConfig::paperLazy();
    htm.granularity = TrackGranularity::Word;
    Machine m(config(htm));
    Addr base = m.memory().allocate(64);
    Addr a = base, b = base + 8;
    int rollbacks = 0;
    bool committed = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            co_await c.xbegin();
            try {
                co_await c.load(a);
                co_await c.load(b);
                co_await c.release(a); // drop ONLY word a
                co_await c.exec(2000);
                co_await c.xvalidate();
                co_await c.xcommit();
                committed = true;
                co_return;
            } catch (const TxRollback& r) {
                ++rollbacks;
                // Must be the conflict on b (still subscribed), and
                // only when cpu1 writes b.
                EXPECT_EQ(r.vaddr, b);
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        co_await c.xbegin();
        co_await c.store(a, 1); // released: no violation
        co_await c.xvalidate();
        co_await c.xcommit();
        co_await c.exec(300);
        co_await c.xbegin();
        co_await c.store(b, 2); // still subscribed: violation
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_TRUE(committed);
    EXPECT_EQ(rollbacks, 1);
}

TEST(WordGranularity, WorkloadVerifiesUnderWordTracking)
{
    HtmConfig htm = HtmConfig::paperLazy();
    htm.granularity = TrackGranularity::Word;
    Mp3dParams p;
    p.particles = 128;
    Mp3dKernel k(p);
    RunResult r = runKernel(k, htm, 8);
    EXPECT_TRUE(r.verified);
}

TEST(AtomicOrElse, AlternatePathRunsOnAbort)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    int primaryRuns = 0;
    int altRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomicOrElse(
            [&](TxThread& t) -> SimTask {
                ++primaryRuns;
                co_await t.st(a, 1);
                co_await t.cpu().xabort(9); // tryatomic failure path
            },
            [&](TxThread& t) -> SimTask {
                ++altRuns;
                co_await t.st(a, 2);
            });
        EXPECT_TRUE(out.committed());
    });
    m.run();
    EXPECT_EQ(primaryRuns, 1);
    EXPECT_EQ(altRuns, 1);
    EXPECT_EQ(m.memory().read(a), 2u); // only the alternate committed
}

TEST(AtomicOrElse, AlternateSkippedOnCommit)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    int altRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomicOrElse(
            [&](TxThread& t) -> SimTask { co_await t.st(a, 1); },
            [&](TxThread& t) -> SimTask {
                ++altRuns;
                co_await t.st(a, 2);
            });
        EXPECT_TRUE(out.committed());
    });
    m.run();
    EXPECT_EQ(altRuns, 0);
    EXPECT_EQ(m.memory().read(a), 1u);
}

TEST(AtomicOrElse, ViolationsStillRetryPrimary)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    int primaryRuns = 0;
    int altRuns = 0;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        TxOutcome out = co_await t0.atomicOrElse(
            [&](TxThread& t) -> SimTask {
                ++primaryRuns;
                co_await t.ld(a);
                if (first) {
                    first = false;
                    c.htm().raiseViolation(0x1, 0); // violation != abort
                    co_await t.work(1);
                }
                co_await t.st(a, 5);
            },
            [&](TxThread& t) -> SimTask {
                ++altRuns;
                co_await t.st(a, 99);
            });
        EXPECT_TRUE(out.committed());
    });
    m.run();
    EXPECT_EQ(primaryRuns, 2); // retried, not diverted to alt
    EXPECT_EQ(altRuns, 0);
    EXPECT_EQ(m.memory().read(a), 5u);
}

TEST(Backoff, KnobDisablesRetryDelay)
{
    // With backoff off, a lazy retry re-enters the body immediately;
    // both configurations must still be exact.
    for (bool backoff : {true, false}) {
        HtmConfig htm = HtmConfig::paperLazy();
        htm.retryBackoff = backoff;
        Machine m(config(htm));
        std::vector<std::unique_ptr<TxThread>> th;
        for (int i = 0; i < 2; ++i)
            th.push_back(std::make_unique<TxThread>(m.cpu(i)));
        Addr a = m.memory().allocate(64);
        for (int i = 0; i < 2; ++i) {
            m.spawn(i, [&, i](Cpu&) -> SimTask {
                TxThread& t = *th[static_cast<size_t>(i)];
                for (int k = 0; k < 25; ++k) {
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(a);
                        co_await tx.work(12);
                        co_await tx.st(a, v + 1);
                    });
                }
            });
        }
        m.run();
        EXPECT_EQ(m.memory().read(a), 50u) << "backoff=" << backoff;
    }
}

TEST(OpenReductions, Mp3dVerifiesWithCompensation)
{
    // Open-nested reduction updates commit immediately; compensation
    // handlers subtract them again when the enclosing transaction
    // rolls back — the totals must stay exact despite retries.
    Mp3dParams p;
    p.particles = 192;
    p.openReductions = true;
    for (int threads : {1, 4, 8}) {
        Mp3dKernel k(p);
        RunResult r = runKernel(k, HtmConfig::paperLazy(), threads);
        EXPECT_TRUE(r.verified) << threads << " threads";
    }
}

TEST(OpenReductions, FlattenedBaselineStillVerifies)
{
    Mp3dParams p;
    p.particles = 192;
    p.openReductions = true;
    Mp3dKernel k(p);
    RunResult r = runKernel(k, HtmConfig::flattenedBaseline(), 8);
    EXPECT_TRUE(r.verified);
}
