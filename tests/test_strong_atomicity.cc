/**
 * @file
 * Strong-atomicity interleavings at machine level: non-transactional
 * loads and stores racing active transactions under both versioning
 * modes, the validated-window stalls, and durability of open-nested
 * commits performed inside ancestors (write-buffered or aborted).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine.hh"
#include "core/tx_signals.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(StrongAtomicity, NonTxLoadHidesUndoLogSpeculation)
{
    // An undo-log transaction writes in place; a concurrent plain load
    // must still observe the pre-transactional value, and the value
    // after the commit.
    Machine m(config(HtmConfig::eagerUndoLog()));
    const Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);

    Word mid = 0, after = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 41);
        co_await c.store(a, 42); // two undo entries for the same word
        co_await c.exec(600);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(200); // while the writer speculates
        mid = co_await c.load(a);
        co_await c.exec(2000); // after it committed
        after = co_await c.load(a);
    });
    m.run();

    EXPECT_EQ(mid, 7u) << "plain load leaked speculative in-place data";
    EXPECT_EQ(after, 42u);
    EXPECT_EQ(m.memory().read(a), 42u);
}

TEST(StrongAtomicity, NonTxLoadHidesWriteBufferSpeculation)
{
    Machine m(config(HtmConfig::paperLazy()));
    const Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);

    Word mid = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 42);
        co_await c.exec(600);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(200);
        mid = co_await c.load(a);
    });
    m.run();

    EXPECT_EQ(mid, 7u);
    EXPECT_EQ(m.memory().read(a), 42u);
}

TEST(StrongAtomicity, NonTxStoreViolatesActiveReaderBothModes)
{
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm));
        const Addr a = m.memory().allocate(64);
        m.memory().write(a, 0);

        int rollbacks = 0;
        Word finalRead = 0;
        m.spawn(0, [&](Cpu& c) -> SimTask {
            for (;;) {
                co_await c.xbegin();
                try {
                    Word v = co_await c.load(a);
                    co_await c.exec(800); // let the plain store land
                    Word v2 = co_await c.load(a);
                    EXPECT_EQ(v, v2) << htm.describe();
                    co_await c.xvalidate();
                    co_await c.xcommit();
                    finalRead = v;
                    co_return;
                } catch (const TxRollback&) {
                    ++rollbacks;
                }
            }
        });
        m.spawn(1, [&](Cpu& c) -> SimTask {
            co_await c.exec(300);
            co_await c.store(a, 9); // plain store into the read-set
        });
        m.run();

        EXPECT_GE(rollbacks, 1) << htm.describe();
        EXPECT_EQ(finalRead, 9u) << htm.describe();
        EXPECT_EQ(m.memory().read(a), 9u) << htm.describe();
    }
}

TEST(StrongAtomicity, NonTxStorePatchesUndoOfAbortedWriter)
{
    // Undo-log writer speculates on 'a', then a plain store hits the
    // same word, then the transaction aborts voluntarily: the rollback
    // must not resurrect the pre-transactional value over the plain
    // store (its undo entries were patched when the store landed).
    Machine m(config(HtmConfig::eagerUndoLog()));
    const Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        try {
            co_await c.store(a, 42);
            co_await c.exec(800); // plain store lands here
            co_await c.xabort(1);
        } catch (const TxAbortSignal&) {
        } catch (const TxRollback&) {
            // Violated by the plain store before reaching xabort —
            // the rollback path must apply the same patched undo.
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        co_await c.store(a, 99);
    });
    m.run();

    EXPECT_EQ(m.memory().read(a), 99u)
        << "rollback resurrected stale pre-tx data over a plain store";
}

TEST(StrongAtomicity, NonTxAccessStallsForValidatedPeer)
{
    // Once a transaction validates it is serialized; a plain load or
    // store in its validate-to-commit window must wait for the commit
    // rather than slip in between (it would read a value the commit is
    // about to replace, or be lost under the pending write-back).
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm, 3));
        const Addr a = m.memory().allocate(64);
        m.memory().write(a, 1);

        Word probed = 0;
        m.spawn(0, [&](Cpu& c) -> SimTask {
            co_await c.xbegin();
            Word v = co_await c.load(a);
            co_await c.store(a, v + 10);
            co_await c.xvalidate();
            co_await c.exec(900); // long validated window
            co_await c.xcommit();
        });
        m.spawn(1, [&](Cpu& c) -> SimTask {
            co_await c.exec(400); // inside the validated window
            probed = co_await c.load(a);
        });
        m.spawn(2, [&](Cpu& c) -> SimTask {
            co_await c.exec(400);
            co_await c.store(a, 100); // must order after the commit
        });
        m.run();

        // Both plain accesses stall until the commit; their mutual
        // order afterwards is timing-dependent, so the load may see
        // the committed value or the peer's store — but never the
        // pre-commit value the commit was about to replace.
        EXPECT_TRUE(probed == 11u || probed == 100u) << htm.describe()
            << ": plain load slipped inside a validated commit "
               "(probed " << probed << ")";
        EXPECT_EQ(m.memory().read(a), 100u) << htm.describe()
            << ": plain store was lost under the pending commit";
    }
}

TEST(StrongAtomicity, OpenCommitWritesThroughAncestorWriteBuffer)
{
    // The outer transaction holds 'b' in its write buffer when the
    // open-nested child commits the same word: the child's commit is
    // durable immediately and patches the ancestor's buffered state.
    Machine m(config(HtmConfig::paperLazy(), 1));
    const Addr b = m.memory().allocate(64);
    m.memory().write(b, 0);

    Word seenByOuter = 0;
    Word durableMidTx = 0;
    TxThread t(m.cpu(0));
    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t.atomic([&](TxThread& th) -> SimTask {
            co_await th.cpu().store(b, 1); // buffered in the outer
            co_await th.atomicOpen([&](TxThread& th2) -> SimTask {
                co_await th2.cpu().store(b, 2);
            });
            durableMidTx = m.memory().read(b); // backing store, raw
            seenByOuter = co_await th.cpu().load(b);
        });
    });
    m.run();

    EXPECT_EQ(durableMidTx, 2u)
        << "open commit was held back by the ancestor write buffer";
    EXPECT_EQ(seenByOuter, 2u)
        << "ancestor buffer not patched by the open commit";
    EXPECT_EQ(m.memory().read(b), 2u);
}

TEST(StrongAtomicity, OpenCommitSurvivesOuterAbortBothModes)
{
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm, 1));
        const Addr a = m.memory().allocate(64);
        const Addr b = a + 8;
        m.memory().write(a, 7);
        m.memory().write(b, 0);

        TxThread t(m.cpu(0));
        m.spawn(0, [&](Cpu&) -> SimTask {
            TxOutcome out = co_await t.atomic(
                [&](TxThread& th) -> SimTask {
                    co_await th.cpu().store(a, 42); // speculative
                    co_await th.atomicOpen(
                        [&](TxThread& th2) -> SimTask {
                            Word v = co_await th2.cpu().load(b);
                            co_await th2.cpu().store(b, v + 1);
                        });
                    co_await th.cpu().xabort(1);
                });
            EXPECT_EQ(out.result, TxResult::Aborted);
        });
        m.run();

        EXPECT_EQ(m.memory().read(a), 7u) << htm.describe()
            << ": aborted outer speculation leaked";
        EXPECT_EQ(m.memory().read(b), 1u) << htm.describe()
            << ": open-nested commit undone by the outer abort";
    }
}
