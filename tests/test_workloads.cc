/**
 * @file
 * End-to-end workload tests: every kernel's parallel result must match
 * its sequential reference under every HTM configuration — the
 * serialisability witness for the whole stack.
 */

#include <gtest/gtest.h>

#include "workloads/kernel_condsync.hh"
#include "workloads/kernel_iobench.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"
#include "workloads/kernels_scientific.hh"

using namespace tmsim;

namespace {

struct SciCase
{
    const char* label;
    SciParams (*make)();
};

class SciKernelTest : public ::testing::TestWithParam<SciCase>
{
};

} // namespace

TEST_P(SciKernelTest, VerifiesAcrossConfigs)
{
    const SciCase& cs = GetParam();
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::flattenedBaseline(),
          HtmConfig::eagerUndoLog()}) {
        SciParams p = cs.make();
        p.outerIters = 32; // keep the test quick
        SciKernel k(p);
        RunResult r = runKernel(k, htm, 4);
        EXPECT_TRUE(r.verified)
            << cs.label << " under " << htm.describe();
        EXPECT_GT(r.cycles, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllScientificKernels, SciKernelTest,
    ::testing::Values(SciCase{"barnes", sciBarnes},
                      SciCase{"fmm", sciFmm},
                      SciCase{"moldyn", sciMoldyn},
                      SciCase{"swim", sciSwim},
                      SciCase{"tomcatv", sciTomcatv},
                      SciCase{"water", sciWater}),
    [](const ::testing::TestParamInfo<SciCase>& info) {
        return std::string(info.param.label);
    });

TEST(Mp3d, VerifiesSequentialAndParallel)
{
    for (int threads : {1, 4, 8}) {
        Mp3dParams p;
        p.particles = 128;
        p.steps = 2;
        Mp3dKernel k(p);
        RunResult r = runKernel(k, HtmConfig::paperLazy(), threads);
        EXPECT_TRUE(r.verified) << threads << " threads";
    }
}

TEST(Mp3d, VerifiesUnderFlatteningAndEager)
{
    for (HtmConfig htm :
         {HtmConfig::flattenedBaseline(), HtmConfig::eagerUndoLog()}) {
        Mp3dParams p;
        p.particles = 128;
        p.steps = 2;
        Mp3dKernel k(p);
        RunResult r = runKernel(k, htm, 4);
        EXPECT_TRUE(r.verified) << htm.describe();
    }
}

TEST(Mp3d, NestingReducesRollbackWaste)
{
    Mp3dParams p;
    Mp3dKernel nested(p);
    Mp3dKernel flat(p);
    RunResult rn = runKernel(nested, HtmConfig::paperLazy(), 8);
    RunResult rf = runKernel(flat, HtmConfig::flattenedBaseline(), 8);
    ASSERT_TRUE(rn.verified);
    ASSERT_TRUE(rf.verified);
    // The headline claim: nesting beats flattening on mp3d.
    EXPECT_LT(rn.cycles, rf.cycles);
}

TEST(SpecJbb, AllVariantsVerify)
{
    for (JbbVariant variant :
         {JbbVariant::Flat, JbbVariant::ClosedNested,
          JbbVariant::OpenNested, JbbVariant::Hybrid}) {
        for (int threads : {1, 4, 8}) {
            SpecJbbKernel k(variant);
            RunResult r = runKernel(k, HtmConfig::paperLazy(), threads);
            EXPECT_TRUE(r.verified)
                << k.name() << " at " << threads << " threads";
        }
    }
}

TEST(SpecJbb, VariantsVerifyUnderFlattening)
{
    for (JbbVariant variant :
         {JbbVariant::Flat, JbbVariant::ClosedNested,
          JbbVariant::OpenNested, JbbVariant::Hybrid}) {
        SpecJbbKernel k(variant);
        RunResult r = runKernel(k, HtmConfig::flattenedBaseline(), 4);
        EXPECT_TRUE(r.verified) << k.name();
    }
}

TEST(IoBench, TransactionalAndSerializedVerify)
{
    for (bool tx : {true, false}) {
        for (int threads : {1, 4}) {
            IoBenchParams p;
            p.msgsPerThread = 8;
            p.transactional = tx;
            IoBenchKernel k(p);
            RunResult r = runKernel(k, HtmConfig::paperLazy(), threads);
            EXPECT_TRUE(r.verified)
                << k.name() << " at " << threads << " threads";
        }
    }
}

TEST(IoBench, TransactionalOutscalesSerializedAt8)
{
    IoBenchParams p;
    p.msgsPerThread = 12;
    p.transactional = true;
    IoBenchKernel txk(p);
    p.transactional = false;
    IoBenchKernel serk(p);
    RunResult rt = runKernel(txk, HtmConfig::paperLazy(), 8);
    RunResult rs = runKernel(serk, HtmConfig::paperLazy(), 8);
    ASSERT_TRUE(rt.verified);
    ASSERT_TRUE(rs.verified);
    EXPECT_LT(rt.cycles, rs.cycles);
}

TEST(CondSync, SchedulerAndPollingVerify)
{
    for (bool sched : {true, false}) {
        CondSyncParams p;
        p.itemsPerPair = 6;
        p.useScheduler = sched;
        CondSyncKernel k(p);
        RunResult r = runKernel(k, HtmConfig::paperLazy(), 5);
        EXPECT_TRUE(r.verified) << k.name();
    }
}

TEST(Fig5Row, ProducesVerifiedSpeedups)
{
    Fig5Row row = fig5Row(
        [] {
            SciParams p = sciMoldyn();
            p.outerIters = 32;
            return std::make_unique<SciKernel>(p);
        },
        4);
    EXPECT_TRUE(row.allVerified);
    EXPECT_GT(row.nestingSpeedup, 0.0);
    EXPECT_GT(row.nestedVsSeq, 1.0); // 4 threads beat 1 thread
}
