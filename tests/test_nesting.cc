/**
 * @file
 * Closed- and open-nested transaction semantics (paper section 4.5-4.6
 * and figure 1): independent rollback, closed-commit merging, open
 * commit publishing with ancestor patching (both versioning schemes),
 * violation masks across levels, and the flattening baseline.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/tx_signals.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Nesting, ClosedChildMergesIntoParent)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbegin(); // closed-nested child
        EXPECT_EQ(c.htm().depth(), 2);
        co_await c.store(b, 2);
        // The child can read state produced by its ancestor.
        Word va = co_await c.load(a);
        EXPECT_EQ(va, 1u);
        co_await c.xvalidate(); // no-op for closed nesting
        co_await c.xcommit();   // merge into parent
        EXPECT_EQ(c.htm().depth(), 1);
        // Nothing escaped to shared memory yet (figure 1, step 2).
        EXPECT_EQ(m.memory().read(b), 0u);
        // Parent's write-set now contains the child's line.
        EXPECT_NE(c.htm().levelsWriting(c.htm().lineOf(b)), 0u);
        co_await c.xvalidate();
        co_await c.xcommit();
        EXPECT_EQ(m.memory().read(a), 1u);
        EXPECT_EQ(m.memory().read(b), 2u);
    });
    m.run();
}

TEST(Nesting, InnerRollbackDoesNotDisturbParent)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbegin();
        co_await c.store(b, 99);
        try {
            co_await c.xabort(); // abort only the child
        } catch (const TxAbortSignal& s) {
            EXPECT_EQ(s.targetLevel, 2);
        }
        // Parent is intact and still holds its speculative write.
        EXPECT_EQ(c.htm().depth(), 1);
        Word va = co_await c.load(a);
        EXPECT_EQ(va, 1u);
        // The child's write is gone.
        EXPECT_EQ(c.htm().levelsWriting(c.htm().lineOf(b)), 0u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
    EXPECT_EQ(m.memory().read(b), 0u);
}

TEST(Nesting, OpenCommitPublishesImmediately)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbeginOpen();
        co_await c.store(b, 7);
        co_await c.xvalidate();
        co_await c.xcommit();
        // Open commit escapes to shared memory before the parent ends
        // (figure 1, steps 3-4 on the open-nesting timeline).
        EXPECT_EQ(m.memory().read(b), 7u);
        EXPECT_EQ(m.memory().read(a), 0u); // parent still speculative
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
}

TEST(Nesting, OpenCommitSurvivesParentAbort)
{
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm));
        Addr a = m.memory().allocate(64);
        Addr b = m.memory().allocate(64);
        m.spawn(0, [&](Cpu& c) -> SimTask {
            co_await c.xbegin();
            co_await c.store(a, 1);
            co_await c.xbeginOpen();
            co_await c.store(b, 7);
            co_await c.xvalidate();
            co_await c.xcommit();
            try {
                co_await c.xabort(); // parent aborts AFTER open commit
            } catch (const TxAbortSignal&) {
            }
        });
        m.run();
        // The open-nested commit is permanent; the parent's write is
        // undone.
        EXPECT_EQ(m.memory().read(b), 7u) << htm.describe();
        EXPECT_EQ(m.memory().read(a), 0u) << htm.describe();
    }
}

TEST(Nesting, OpenCommitOverwritingParentWritePatchesUndo)
{
    // Paper 6.3.1: if an open-nested commit overwrites data also
    // written by its parent, the parent's undo entry must be updated
    // so a later parent rollback does not revert the committed value.
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm));
        Addr a = m.memory().allocate(64);
        m.memory().write(a, 100);
        m.spawn(0, [&](Cpu& c) -> SimTask {
            co_await c.xbegin();
            co_await c.store(a, 1); // parent writes a
            co_await c.xbeginOpen();
            co_await c.store(a, 2); // open child overwrites a
            co_await c.xvalidate();
            co_await c.xcommit(); // committed: a = 2 permanently
            try {
                co_await c.xabort(); // parent rollback
            } catch (const TxAbortSignal&) {
            }
        });
        m.run();
        // Parent rollback must leave the child's committed value, not
        // restore the pre-transaction 100.
        EXPECT_EQ(m.memory().read(a), 2u) << htm.describe();
    }
}

TEST(Nesting, OpenCommitUpdatesParentBufferedData)
{
    // Paper 4.5: "The parent transaction updates the data in its
    // read-set or write-set if they overlap with the write-set of the
    // open-nested transaction."
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbeginOpen();
        co_await c.store(a, 2);
        co_await c.xvalidate();
        co_await c.xcommit();
        // Parent now observes the committed value.
        Word v = co_await c.load(a);
        EXPECT_EQ(v, 2u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 2u);
}

TEST(Nesting, ParentSetsNotTrimmedByOpenCommit)
{
    // The paper's deliberate departure from Moss & Hosking: an open
    // commit never removes overlapping addresses from ancestor sets,
    // so the parent's atomicity behaviour cannot change under it.
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        Word v = co_await c.load(a);
        (void)v;
        Addr line = c.htm().lineOf(a);
        EXPECT_EQ(c.htm().levelsReading(line), 0x1u);
        co_await c.xbeginOpen();
        co_await c.store(a, 5);
        co_await c.xvalidate();
        co_await c.xcommit();
        // Parent read-set still contains the line.
        EXPECT_EQ(c.htm().levelsReading(line) & 0x1u, 0x1u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
}

TEST(Nesting, ViolationMaskTargetsAffectedLevels)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr outerAddr = m.memory().allocate(64);
    Addr innerAddr = m.memory().allocate(64);
    int innerRetries = 0;
    int outerRetries = 0;
    bool done = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        while (!done) {
            co_await c.xbegin();
            try {
                co_await c.load(outerAddr);
                for (;;) {
                    co_await c.xbegin();
                    try {
                        co_await c.load(innerAddr);
                        co_await c.exec(3000); // window for committer
                        co_await c.xvalidate();
                        co_await c.xcommit();
                        break;
                    } catch (const TxRollback& r) {
                        EXPECT_EQ(r.targetLevel, 2);
                        ++innerRetries;
                    }
                }
                co_await c.xvalidate();
                co_await c.xcommit();
                done = true;
            } catch (const TxRollback& r) {
                EXPECT_EQ(r.targetLevel, 1);
                ++outerRetries;
            }
        }
    });
    // The committer hits only the inner transaction's read-set: the
    // rollback must stop at level 2 and never disturb level 1.
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500);
        co_await c.xbegin();
        co_await c.store(innerAddr, 1);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_GE(innerRetries, 1);
    EXPECT_EQ(outerRetries, 0);
}

TEST(Nesting, ConflictOnParentRollsBackThroughChild)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr outerAddr = m.memory().allocate(64);
    int outerRetries = 0;
    bool done = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        while (!done) {
            co_await c.xbegin();
            try {
                co_await c.load(outerAddr); // parent-level read
                co_await c.xbegin();        // child active during hit
                co_await c.exec(3000);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_await c.xvalidate();
                co_await c.xcommit();
                done = true;
            } catch (const TxRollback& r) {
                EXPECT_EQ(r.targetLevel, 1);
                ++outerRetries;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500);
        co_await c.xbegin();
        co_await c.store(outerAddr, 1);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_GE(outerRetries, 1);
}

TEST(Nesting, FlatteningSubsumesInnerTransactions)
{
    Machine m(config(HtmConfig::flattenedBaseline()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbegin(); // subsumed: no new hardware level
        EXPECT_EQ(c.htm().depth(), 1);
        EXPECT_EQ(c.htm().logicalDepth(), 2);
        co_await c.store(b, 2);
        co_await c.xvalidate();
        co_await c.xcommit(); // pops the subsumed begin only
        EXPECT_TRUE(c.htm().inTx());
        EXPECT_EQ(m.memory().read(b), 0u); // nothing escaped
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
    EXPECT_EQ(m.memory().read(b), 2u);
    EXPECT_EQ(m.stats().value("cpu0.htm.subsumed_begins"), 1u);
}

TEST(Nesting, FlattenedInnerConflictRollsBackEverything)
{
    Machine m(config(HtmConfig::flattenedBaseline()));
    Addr innerAddr = m.memory().allocate(64);
    int outerRetries = 0;
    bool done = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        while (!done) {
            co_await c.xbegin();
            try {
                co_await c.exec(10);
                co_await c.xbegin(); // flattened
                co_await c.load(innerAddr);
                co_await c.exec(3000);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_await c.xvalidate();
                co_await c.xcommit();
                done = true;
            } catch (const TxRollback& r) {
                // Under flattening the whole outer transaction pays.
                EXPECT_EQ(r.targetLevel, 1);
                ++outerRetries;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500);
        co_await c.xbegin();
        co_await c.store(innerAddr, 1);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_GE(outerRetries, 1);
}

TEST(Nesting, DeepNestingBeyondHardwareSubsumes)
{
    HtmConfig htm = HtmConfig::paperLazy();
    htm.maxHwLevels = 2;
    Machine m(config(htm));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.xbegin();
        co_await c.xbegin(); // beyond hw levels: subsumed into level 2
        EXPECT_EQ(c.htm().depth(), 2);
        EXPECT_EQ(c.htm().logicalDepth(), 3);
        co_await c.store(a, 3);
        co_await c.xvalidate();
        co_await c.xcommit(); // subsumed pop
        co_await c.xvalidate();
        co_await c.xcommit(); // merge level 2 into 1
        co_await c.xvalidate();
        co_await c.xcommit(); // outermost commit
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 3u);
}

TEST(Nesting, ThreeLevelIndependentState)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    Addr c3 = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xbegin();
        co_await c.store(b, 2);
        co_await c.xbegin();
        co_await c.store(c3, 3);
        EXPECT_EQ(c.htm().depth(), 3);
        // Innermost sees every ancestor's speculative state.
        EXPECT_EQ(co_await c.load(a), 1u);
        EXPECT_EQ(co_await c.load(b), 2u);
        try {
            co_await c.xabort(); // kill only level 3
        } catch (const TxAbortSignal&) {
        }
        EXPECT_EQ(c.htm().depth(), 2);
        EXPECT_EQ(co_await c.load(b), 2u);
        co_await c.xvalidate();
        co_await c.xcommit(); // merge 2 into 1
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
    EXPECT_EQ(m.memory().read(b), 2u);
    EXPECT_EQ(m.memory().read(c3), 0u); // aborted level's write gone
}

TEST(Nesting, UndoLogClosedNestingRestoresPerLevel)
{
    Machine m(config(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    m.memory().write(a, 10);
    m.memory().write(b, 20);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 11); // in place, logged at level 1
        co_await c.xbegin();
        co_await c.store(b, 21); // logged at level 2
        EXPECT_EQ(m.memory().read(b), 21u);
        try {
            co_await c.xabort();
        } catch (const TxAbortSignal&) {
        }
        // Level-2 undo processed FILO; level 1 untouched.
        EXPECT_EQ(m.memory().read(b), 20u);
        EXPECT_EQ(m.memory().read(a), 11u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 11u);
    EXPECT_EQ(m.memory().read(b), 20u);
}
