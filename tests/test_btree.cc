/**
 * @file
 * The simulated-memory B-tree substrate: structural invariants,
 * inserts with splits, lookups, bulk loading, transactional atomicity
 * under rollback, and concurrent mixed operations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/machine.hh"
#include "sim/rng.hh"
#include "workloads/btree.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus = 1)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 32 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(BTree, EmptyTreeIsValid)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 64);
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    EXPECT_EQ(tree.size(m.memory()), 0u);
}

TEST(BTree, InsertAndLookupSequential)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 256);
    TxThread t0(m.cpu(0));
    constexpr int n = 100;

    m.spawn(0, [&](Cpu&) -> SimTask {
        for (int i = 1; i <= n; ++i) {
            co_await t0.atomic([&](TxThread& t) -> SimTask {
                co_await tree.insert(t, static_cast<Word>(i),
                                     static_cast<Word>(i * 10));
            });
        }
        for (int i = 1; i <= n; ++i) {
            co_await t0.atomic([&](TxThread& t) -> SimTask {
                Word v = co_await tree.lookup(t, static_cast<Word>(i));
                EXPECT_EQ(v, static_cast<Word>(i * 10));
            });
        }
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            Word v = co_await tree.lookup(t, 9999);
            EXPECT_EQ(v, 0u);
        });
    });
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    EXPECT_EQ(tree.size(m.memory()), static_cast<size_t>(n));
}

TEST(BTree, RandomInsertOrderMatchesReferenceMap)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 512);
    TxThread t0(m.cpu(0));
    std::map<Word, Word> ref;
    Rng rng(42);
    std::vector<std::pair<Word, Word>> ops;
    for (int i = 0; i < 200; ++i) {
        Word k = rng.range(1, 500);
        Word v = rng.next() | 1;
        ops.emplace_back(k, v);
        ref[k] = v; // overwrite semantics
    }

    m.spawn(0, [&](Cpu&) -> SimTask {
        for (const auto& [k, v] : ops) {
            co_await t0.atomic([&](TxThread& t) -> SimTask {
                co_await tree.insert(t, k, v);
            });
        }
    });
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    auto items = tree.items(m.memory());
    ASSERT_EQ(items.size(), ref.size());
    auto it = ref.begin();
    for (const auto& [k, v] : items) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    }
}

TEST(BTree, AddDeltaUpdatesInPlace)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 64);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await tree.insert(t, 5, 100);
        });
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            Word v = co_await tree.addDelta(t, 5, 7);
            EXPECT_EQ(v, 107u);
        });
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            Word v = co_await tree.addDelta(t, 6, 7); // absent
            EXPECT_EQ(v, 0u);
        });
    });
    m.run();
    auto items = tree.items(m.memory());
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].second, 107u);
}

TEST(BTree, BulkLoadBuildsValidTree)
{
    for (int n : {1, 3, 4, 5, 16, 17, 64, 100, 333}) {
        Machine m(config());
        SimBTree tree = SimBTree::create(m.memory(), 1024);
        std::vector<std::pair<Word, Word>> pairs;
        for (int i = 0; i < n; ++i)
            pairs.emplace_back(static_cast<Word>(2 * i + 1),
                               static_cast<Word>(i));
        tree.bulkLoad(m.memory(), pairs);
        EXPECT_TRUE(tree.validateStructure(m.memory())) << "n=" << n;
        auto items = tree.items(m.memory());
        ASSERT_EQ(items.size(), static_cast<size_t>(n)) << "n=" << n;
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(items[static_cast<size_t>(i)].first,
                      static_cast<Word>(2 * i + 1));
    }
}

TEST(BTree, InsertIntoBulkLoadedTree)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 512);
    std::vector<std::pair<Word, Word>> pairs;
    for (int i = 0; i < 50; ++i)
        pairs.emplace_back(static_cast<Word>(2 * i + 2),
                           static_cast<Word>(i));
    tree.bulkLoad(m.memory(), pairs);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        for (int i = 0; i < 50; ++i) {
            co_await t0.atomic([&](TxThread& t) -> SimTask {
                co_await tree.insert(t, static_cast<Word>(2 * i + 1),
                                     999);
            });
        }
    });
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    EXPECT_EQ(tree.size(m.memory()), 100u);
}

TEST(BTree, AbortedInsertLeavesTreeUntouched)
{
    Machine m(config());
    SimBTree tree = SimBTree::create(m.memory(), 128);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        for (int i = 1; i <= 20; ++i) {
            co_await t0.atomic([&](TxThread& t) -> SimTask {
                co_await tree.insert(t, static_cast<Word>(i),
                                     static_cast<Word>(i));
            });
        }
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await tree.insert(t, 100, 100);
            co_await t.cpu().xabort(1);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    EXPECT_EQ(tree.size(m.memory()), 20u);
    // The aborted insert's key must be absent.
    for (const auto& [k, v] : tree.items(m.memory())) {
        (void)v;
        EXPECT_NE(k, 100u);
    }
}

TEST(BTree, ConcurrentDisjointInsertsAllLand)
{
    constexpr int nThreads = 4;
    constexpr int perThread = 25;
    Machine m(config(nThreads));
    SimBTree tree = SimBTree::create(m.memory(), 1024);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < nThreads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < nThreads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            for (int k = 0; k < perThread; ++k) {
                Word key = static_cast<Word>(i * 1000 + k + 1);
                co_await t.atomic([&](TxThread& th) -> SimTask {
                    co_await tree.insert(th, key, key * 2);
                });
            }
        });
    }
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    EXPECT_EQ(tree.size(m.memory()),
              static_cast<size_t>(nThreads * perThread));
}

TEST(BTree, ConcurrentMixedOpsPreserveSum)
{
    // Concurrent addDelta ops: the sum of all values must be exact.
    constexpr int nThreads = 4;
    constexpr int perThread = 30;
    Machine m(config(nThreads));
    SimBTree tree = SimBTree::create(m.memory(), 512);
    std::vector<std::pair<Word, Word>> pairs;
    for (int i = 1; i <= 16; ++i)
        pairs.emplace_back(static_cast<Word>(i), 1000);
    tree.bulkLoad(m.memory(), pairs);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < nThreads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < nThreads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            Rng rng(static_cast<std::uint64_t>(i) + 99);
            for (int k = 0; k < perThread; ++k) {
                Word key = rng.range(1, 16);
                co_await t.atomic([&](TxThread& th) -> SimTask {
                    co_await tree.addDelta(th, key, 1);
                });
            }
        });
    }
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory()));
    Word sum = 0;
    for (const auto& [k, v] : tree.items(m.memory())) {
        (void)k;
        sum += v;
    }
    EXPECT_EQ(sum, 16u * 1000u + nThreads * perThread);
}
