/**
 * @file
 * Multi-CPU conflict detection: lazy validate-time broadcast, commit
 * line locking, eager access-time checks under both resolution
 * policies, and strong atomicity for non-transactional stores.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sim/rng.hh"
#include "core/tx_signals.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(HtmConflict, LazyCommitterViolatesActiveReader)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 0);

    int readerRollbacks = 0;
    Word readerFinal = 0;

    // Reader: reads 'a' early, then dawdles so the writer commits in
    // the middle; must be violated and re-execute, finally seeing 1.
    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            co_await c.xbegin();
            try {
                Word v = co_await c.load(a);
                co_await c.exec(2000); // leave time for the writer
                Word v2 = co_await c.load(a);
                EXPECT_EQ(v, v2); // isolation within the transaction
                co_await c.xvalidate();
                co_await c.xcommit();
                readerFinal = v;
                co_return;
            } catch (const TxRollback&) {
                ++readerRollbacks;
            }
        }
    });

    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(200); // let the reader read first
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xvalidate();
        co_await c.xcommit();
    });

    m.run();
    EXPECT_GE(readerRollbacks, 1);
    EXPECT_EQ(readerFinal, 1u);
    EXPECT_GE(m.stats().value("htm.lazy_violations"), 1u);
}

TEST(HtmConflict, ConcurrentIncrementsAreExact)
{
    // The classic atomicity witness: two CPUs increment a shared
    // counter in transactions; the result must be exact.
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    constexpr int iters = 50;

    for (int t = 0; t < 2; ++t) {
        m.spawn(t, [&](Cpu& c) -> SimTask {
            for (int i = 0; i < iters; ++i) {
                for (;;) {
                    co_await c.xbegin();
                    try {
                        Word v = co_await c.load(a);
                        co_await c.exec(10);
                        co_await c.store(a, v + 1);
                        co_await c.xvalidate();
                        co_await c.xcommit();
                        break;
                    } catch (const TxRollback&) {
                    }
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(a), static_cast<Word>(2 * iters));
}

TEST(HtmConflict, WriteWriteWithoutReadDoesNotViolateUnderLazy)
{
    // Two transactions blind-write different words of the same line;
    // lazy detection only violates readers, and word-granular commit
    // keeps both updates.
    Machine m(config(HtmConfig::paperLazy()));
    Addr base = m.memory().allocate(64);
    Addr w0 = base, w1 = base + 8;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(w0, 111);
        co_await c.exec(500);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(w1, 222);
        co_await c.exec(500);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(w0), 111u);
    EXPECT_EQ(m.memory().read(w1), 222u);
    EXPECT_EQ(m.stats().value("htm.lazy_violations"), 0u);
}

TEST(HtmConflict, EagerRequesterWinsViolatesReadingHolder)
{
    Machine m(config(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 0);
    int holderRollbacks = 0;
    Word holderFinal = 1234;

    // Holder: reads 'a' then dawdles; a writing requester wins.
    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            co_await c.xbegin();
            try {
                Word v = co_await c.load(a);
                co_await c.exec(3000);
                co_await c.xvalidate();
                co_await c.xcommit();
                holderFinal = v;
                co_return;
            } catch (const TxRollback&) {
                ++holderRollbacks;
            }
            co_await Delay{c.eventQueue(), 5000};
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        co_await c.xbegin();
        co_await c.store(a, 2);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_GE(holderRollbacks, 1);
    EXPECT_EQ(holderFinal, 2u); // retried after the requester's commit
    EXPECT_GE(m.stats().value("htm.eager_conflicts"), 1u);
}

TEST(HtmConflict, EagerInPlaceWriterNeverLeaksSpeculativeData)
{
    // Undo-log versioning puts speculative data in memory: a requester
    // must back off rather than observe it. Under requester-wins the
    // in-place writer is also violated (releasing the line); under no
    // circumstance may the requester read a value that was never
    // committed.
    Machine m(config(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    int requesterRetries = 0;
    int writerRetries = 0;
    Word requesterSaw = 1234;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            co_await c.xbegin();
            try {
                co_await c.store(a, 50); // in place, uncommitted
                co_await c.exec(2500);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++writerRetries;
            }
            co_await Delay{c.eventQueue(), 3000};
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        for (;;) {
            co_await c.xbegin();
            try {
                requesterSaw = co_await c.load(a);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++requesterRetries;
            }
            co_await Delay{c.eventQueue(), 400};
        }
    });
    m.run();
    EXPECT_GE(requesterRetries + writerRetries, 1);
    // Whatever the requester read was committed at the time: either
    // the original 7 (after the writer's rollback) or the final 50.
    EXPECT_TRUE(requesterSaw == 7u || requesterSaw == 50u);
    EXPECT_EQ(m.memory().read(a), 50u);
}

TEST(HtmConflict, EagerOlderInPlaceWriterKeepsOwnership)
{
    // Older-wins: an older in-place writer is never evicted; the
    // younger requester backs off until the writer commits.
    HtmConfig htm = HtmConfig::eagerUndoLog();
    htm.policy = ConflictPolicy::OlderWins;
    Machine m(config(htm));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    int requesterRetries = 0;
    Word requesterSaw = 1234;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 50);
        co_await c.exec(2500);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        for (;;) {
            co_await c.xbegin();
            try {
                requesterSaw = co_await c.load(a);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++requesterRetries;
            }
            co_await Delay{c.eventQueue(), 400};
        }
    });
    m.run();
    EXPECT_GE(requesterRetries, 1);
    EXPECT_EQ(requesterSaw, 50u); // only the committed value
    EXPECT_EQ(m.stats().value("cpu0.htm.rollbacks"), 0u);
}

TEST(HtmConflict, NonTxLoadSeesCommittedValueUnderUndoLog)
{
    Machine m(config(HtmConfig::eagerUndoLog()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 7);
    Word observed = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 50);
        co_await c.store(a, 60); // second in-place write
        co_await c.exec(2000);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500);
        observed = co_await c.load(a); // non-transactional load
    });
    m.run();
    // Strong atomicity: the plain load observed the committed 7, not
    // the speculative 50/60 sitting in memory.
    EXPECT_EQ(observed, 7u);
    EXPECT_EQ(m.memory().read(a), 60u);
}

TEST(HtmConflict, EagerOlderWinsAbortsYoungerRequester)
{
    HtmConfig htm = HtmConfig::eagerUndoLog();
    htm.policy = ConflictPolicy::OlderWins;
    Machine m(config(htm));
    Addr a = m.memory().allocate(64);
    int requesterRollbacks = 0;

    // Older transaction: starts first, holds 'a'.
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.exec(2000);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    // Younger requester: must self-violate and retry.
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(200);
        for (;;) {
            co_await c.xbegin();
            try {
                co_await c.store(a, 2);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++requesterRollbacks;
            }
            co_await Delay{c.eventQueue(), 500};
        }
    });
    m.run();
    EXPECT_GE(requesterRollbacks, 1);
    EXPECT_EQ(m.memory().read(a), 2u); // younger retried after older
    EXPECT_GE(m.stats().value("htm.self_violations"), 1u);
}

TEST(HtmConflict, StrongAtomicityNonTxStoreViolatesReader)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 0);
    int rollbacks = 0;
    Word finalRead = 1234;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            co_await c.xbegin();
            try {
                Word v = co_await c.load(a);
                co_await c.exec(2000);
                co_await c.xvalidate();
                co_await c.xcommit();
                finalRead = v;
                co_return;
            } catch (const TxRollback&) {
                ++rollbacks;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(300);
        co_await c.store(a, 9); // non-transactional store
    });
    m.run();
    EXPECT_GE(rollbacks, 1);
    EXPECT_EQ(finalRead, 9u);
    EXPECT_GE(m.stats().value("htm.strong_atomicity_violations"), 1u);
}

TEST(HtmConflict, ValidatedWriterCannotBeViolated)
{
    // Once a transaction validates, a later committer must not violate
    // it: the earlier transaction is serialised first.
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);
    bool firstCommitted = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        Word v = co_await c.load(b);
        co_await c.store(a, v + 1);
        co_await c.xvalidate();
        // Dawdle between validate and commit while cpu1 commits to b.
        co_await c.exec(2000);
        co_await c.xcommit();
        firstCommitted = true;
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500); // after cpu0 validates
        co_await c.xbegin();
        co_await c.store(b, 7);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_TRUE(firstCommitted);
    EXPECT_EQ(m.stats().value("cpu0.htm.rollbacks"), 0u);
    EXPECT_EQ(m.memory().read(a), 1u);
    EXPECT_EQ(m.memory().read(b), 7u);
}

TEST(HtmConflict, AccessToValidatedWriteSetStallsUntilCommit)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 0);
    Word observed = 1234;

    // Committer validates, then holds the line locked for a while.
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 5);
        co_await c.xvalidate();
        co_await c.exec(3000);
        co_await c.xcommit();
    });
    // Late reader: first access lands after the validate; must stall
    // and observe the committed value, not the stale one.
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(1000);
        co_await c.xbegin();
        observed = co_await c.load(a);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(observed, 5u);
    EXPECT_GE(m.stats().value("htm.lock_stalls"), 1u);
}

TEST(HtmConflict, AbortAfterValidateReleasesLocks)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 3);
    Word observed = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 50);
        co_await c.xvalidate();
        co_await c.exec(1500);
        try {
            co_await c.xabort(1); // voluntary abort after validate
        } catch (const TxAbortSignal&) {
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(500);
        co_await c.xbegin();
        observed = co_await c.load(a); // stalls, then sees old value
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(observed, 3u);
    EXPECT_EQ(m.memory().read(a), 3u);
}

TEST(HtmConflict, ManyCpuCounterStress)
{
    for (HtmConfig htm :
         {HtmConfig::paperLazy(), HtmConfig::eagerUndoLog()}) {
        Machine m(config(htm, 8));
        Addr a = m.memory().allocate(64);
        constexpr int iters = 20;
        for (int t = 0; t < 8; ++t) {
            m.spawn(t, [&, t](Cpu& c) -> SimTask {
                Rng rng(static_cast<std::uint64_t>(t) + 1);
                for (int i = 0; i < iters; ++i) {
                    int backoffs = 0;
                    for (;;) {
                        co_await c.xbegin();
                        try {
                            Word v = co_await c.load(a);
                            co_await c.exec(1 + rng.below(20));
                            co_await c.store(a, v + 1);
                            co_await c.xvalidate();
                            co_await c.xcommit();
                            break;
                        } catch (const TxRollback&) {
                            ++backoffs;
                        }
                        co_await Delay{c.eventQueue(),
                                       rng.below(50u * backoffs + 1)};
                    }
                }
            });
        }
        m.run();
        EXPECT_EQ(m.memory().read(a), static_cast<Word>(8 * iters))
            << htm.describe();
    }
}
