/**
 * @file
 * TxThread runtime conventions: atomic()/atomicOpen() retry drivers,
 * nesting through the runtime, abort outcomes, retry/wake, and the
 * paper's section-7 instruction-count calibration (6-instruction
 * begin, 10-instruction handler-free commit, 6-instruction handler-free
 * rollback, 9-instruction no-arg handler registration).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 8 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Runtime, AtomicCommitsSimpleTransaction)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            Word v = co_await t.ld(a);
            co_await t.st(a, v + 5);
        });
        EXPECT_TRUE(out.committed());
        EXPECT_EQ(out.retries, 0);
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 5u);
}

TEST(Runtime, AtomicRetriesUntilCommitUnderContention)
{
    Machine m(config(HtmConfig::paperLazy(), 4));
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < 4; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    Addr a = m.memory().allocate(64);
    constexpr int iters = 25;

    for (int i = 0; i < 4; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            for (int k = 0; k < iters; ++k) {
                TxOutcome out = co_await threads[static_cast<size_t>(i)]
                                    ->atomic([&](TxThread& t) -> SimTask {
                                        Word v = co_await t.ld(a);
                                        co_await t.work(15);
                                        co_await t.st(a, v + 1);
                                    });
                EXPECT_TRUE(out.committed());
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(a), static_cast<Word>(4 * iters));
}

TEST(Runtime, NestedAtomicRetriesOnlyInnerOnInnerConflict)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    TxThread t1(m.cpu(1));
    Addr innerAddr = m.memory().allocate(64);
    Addr outerAddr = m.memory().allocate(64);
    int outerRuns = 0;
    int innerRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            ++outerRuns;
            co_await t.ld(outerAddr);
            TxOutcome inner =
                co_await t.atomic([&](TxThread& ti) -> SimTask {
                    ++innerRuns;
                    co_await ti.ld(innerAddr);
                    co_await ti.work(3000);
                });
            EXPECT_TRUE(inner.committed());
        });
        EXPECT_TRUE(out.committed());
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        co_await m.cpu(1).exec(700);
        co_await t1.atomic([&](TxThread& t) -> SimTask {
            co_await t.st(innerAddr, 1);
        });
    });
    m.run();
    EXPECT_EQ(outerRuns, 1);
    EXPECT_GE(innerRuns, 2);
}

TEST(Runtime, AbortReturnsAbortedOutcome)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.st(a, 99);
            co_await t.cpu().xabort(42);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
        EXPECT_EQ(out.abortCode, 42u);
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 0u);
}

TEST(Runtime, InnerAbortDoesNotKillOuter)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    Addr b = m.memory().allocate(64);

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.st(a, 1);
            TxOutcome inner =
                co_await t.atomic([&](TxThread& ti) -> SimTask {
                    co_await ti.st(b, 2);
                    co_await ti.cpu().xabort(7);
                });
            EXPECT_EQ(inner.result, TxResult::Aborted);
        });
        EXPECT_TRUE(out.committed());
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
    EXPECT_EQ(m.memory().read(b), 0u);
}

TEST(Runtime, OpenNestedCommitVisibleBeforeParentEnds)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    Addr counter = m.memory().allocate(64);

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.st(a, 1);
            co_await t.atomicOpen([&](TxThread& ti) -> SimTask {
                Word v = co_await ti.ld(counter);
                co_await ti.st(counter, v + 1);
            });
            // The open commit is architecturally visible already.
            EXPECT_EQ(m.memory().read(counter), 1u);
            EXPECT_EQ(m.memory().read(a), 0u);
        });
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
}

TEST(Runtime, RetryYieldParksUntilWake)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    TxThread t1(m.cpu(1));
    Addr flag = m.memory().allocate(64);
    int bodyRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            ++bodyRuns;
            Word v = co_await t.ld(flag);
            if (v == 0)
                co_await t.retryYield();
        });
        EXPECT_TRUE(out.committed());
        EXPECT_GE(out.retries, 1);
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        co_await m.cpu(1).exec(2000);
        co_await t1.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(flag, 1); });
        t0.wake(); // scheduler's job in the full design
    });
    m.run();
    EXPECT_EQ(bodyRuns, 2);
}

TEST(Runtime, MaxRetriesExhausts)
{
    Machine m(config(HtmConfig::paperLazy()));
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);

    m.spawn(0, [&](Cpu& c) -> SimTask {
        TxOutcome out = co_await t0.atomic(
            [&](TxThread& t) -> SimTask {
                co_await t.ld(a);
                // Force a violation against ourselves each attempt.
                c.htm().raiseViolation(0x1, c.htm().lineOf(a));
                co_await t.work(1);
            },
            TxOpts{2, false});
        EXPECT_EQ(out.result, TxResult::RetriesExhausted);
        EXPECT_EQ(out.retries, 3);
    });
    m.run();
}

// --- paper section 7 calibration -----------------------------------

TEST(RuntimeCalibration, TransactionStartCostsSixInstructions)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    std::uint64_t cost = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread&) -> SimTask { co_return; });
        // Measure the second transaction (warm caches).
        std::uint64_t before = c.instret();
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            cost = t.cpu().instret() - before;
            co_return;
        });
    });
    m.run();
    EXPECT_EQ(cost, 6u);
}

TEST(RuntimeCalibration, HandlerFreeCommitCostsTenInstructions)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    std::uint64_t instrBefore = 0;
    std::uint64_t instrAfter = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread&) -> SimTask { co_return; });
        co_await t0.atomic([&](TxThread&) -> SimTask {
            instrBefore = c.instret();
            co_return;
        });
        instrAfter = c.instret();
    });
    m.run();
    EXPECT_EQ(instrAfter - instrBefore, 10u);
}

TEST(RuntimeCalibration, HandlerFreeRollbackCostsSixInstructions)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    std::uint64_t cost = 0;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic(
            [&](TxThread& t) -> SimTask {
                if (first) {
                    first = false;
                    std::uint64_t before = c.instret();
                    c.htm().raiseViolation(0x1, 0);
                    try {
                        co_await t.work(0); // boundary: delivers
                    } catch (...) {
                        // Unreachable: work(0) charges nothing and the
                        // protocol throws before returning here.
                        throw;
                    }
                    (void)before;
                }
                co_return;
            },
            TxOpts{0, false});
        (void)cost;
    });
    // Count precisely with counters around the violation instead.
    m.run();
    std::uint64_t rollbacks = m.stats().value("cpu0.htm.rollbacks");
    EXPECT_EQ(rollbacks, 1u);
}

TEST(RuntimeCalibration, RollbackInstructionDelta)
{
    // Precise rollback cost: instret delta between violation raise and
    // the retry entering the body again, minus the 6-instruction begin
    // of the retry.
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    std::uint64_t raisePoint = 0;
    std::uint64_t retryPoint = 0;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic(
            [&](TxThread& t) -> SimTask {
                if (first) {
                    first = false;
                    raisePoint = c.instret();
                    c.htm().raiseViolation(0x1, 0);
                    co_await t.work(0);
                } else {
                    retryPoint = c.instret();
                }
                co_return;
            },
            TxOpts{0, false});
    });
    m.run();
    // raise -> [rollback: 6 instr] -> [retry begin: 6 instr] -> body
    EXPECT_EQ(retryPoint - raisePoint, 12u);
}

TEST(RuntimeCalibration, HandlerRegistrationCostsNineInstructions)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));
    std::uint64_t cost = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        // Warm-up transaction with a registration (touch the stacks).
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onCommit(
                [](TxThread&, const std::vector<Word>&) -> SimTask {
                    co_return;
                });
        });
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            std::uint64_t before = c.instret();
            co_await t.onCommit(
                [](TxThread&, const std::vector<Word>&) -> SimTask {
                    co_return;
                });
            cost = c.instret() - before;
        });
    });
    m.run();
    EXPECT_EQ(cost, 9u);
}
