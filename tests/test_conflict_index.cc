/**
 * @file
 * Randomized property test for the signature-filtered sharer index:
 * after every operation in a long random sequence of begins, reads,
 * writes, releases, closed/open commits, rollbacks, set clears,
 * evictions and resets, the per-context aggregates (levelsReading /
 * levelsWriting / validatedLevels) and the detector's inverted index
 * must agree exactly with a brute-force scan of every nesting level.
 *
 * The index and signatures are pure acceleration structures — any
 * divergence from the scan is a correctness bug, so the test asserts
 * zero divergence over >= 10k operations per configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/machine.hh"
#include "sim/rng.hh"

using namespace tmsim;

namespace {

constexpr int kCpus = 4;
constexpr int kPoolLines = 64;
constexpr int kOpsPerConfig = 12000;

struct Harness
{
    Machine m;
    Addr base;
    Addr lineBytes;
    std::vector<Addr> units; // every distinct track unit of the pool

    explicit Harness(HtmConfig htm)
        : m([&] {
              MachineConfig cfg;
              cfg.numCpus = kCpus;
              cfg.htm = htm;
              cfg.memBytes = 4 * 1024 * 1024;
              return cfg;
          }()),
          base(m.memory().allocate(kPoolLines * 32)),
          lineBytes(m.cpu(0).htm().lineBytes())
    {
        HtmContext& c0 = m.cpu(0).htm();
        for (Addr w = base; w < base + kPoolLines * lineBytes;
             w += wordBytes) {
            Addr u = c0.trackUnit(w);
            if (units.empty() || units.back() != u)
                units.push_back(u);
        }
        std::sort(units.begin(), units.end());
        units.erase(std::unique(units.begin(), units.end()), units.end());
    }

    Addr
    randomWord(Rng& rng) const
    {
        Addr words = kPoolLines * lineBytes / wordBytes;
        return base + rng.below(words) * wordBytes;
    }

    /** The invariant: fast queries == per-level scans, and the
     *  detector's index mirrors each context exactly. */
    ::testing::AssertionResult
    checkAll()
    {
        ConflictDetector& det = m.memSystem().detector();
        for (int c = 0; c < kCpus; ++c) {
            HtmContext& ctx = m.cpu(c).htm();
            if (ctx.validatedLevels() != ctx.validatedLevelsScan()) {
                return ::testing::AssertionFailure()
                       << "cpu" << c << " validated mask "
                       << ctx.validatedLevels() << " != scan "
                       << ctx.validatedLevelsScan();
            }
            for (Addr u : units) {
                const std::uint32_t r = ctx.levelsReading(u);
                const std::uint32_t w = ctx.levelsWriting(u);
                const std::uint32_t rScan = ctx.levelsReadingScan(u);
                const std::uint32_t wScan = ctx.levelsWritingScan(u);
                if (r != rScan || w != wScan) {
                    return ::testing::AssertionFailure()
                           << "cpu" << c << " unit 0x" << std::hex << u
                           << std::dec << " fast r/w " << r << "/" << w
                           << " != scan " << rScan << "/" << wScan;
                }
                const std::uint32_t ir = det.indexedReaders(ctx, u);
                const std::uint32_t iw = det.indexedWriters(ctx, u);
                if (ir != rScan || iw != wScan) {
                    return ::testing::AssertionFailure()
                           << "cpu" << c << " unit 0x" << std::hex << u
                           << std::dec << " index r/w " << ir << "/" << iw
                           << " != scan " << rScan << "/" << wScan;
                }
            }
        }
        return ::testing::AssertionSuccess();
    }
};

void
runRandomOps(HtmConfig htm, std::uint64_t seed)
{
    Harness h(htm);
    Rng rng(seed);
    const int maxHw = htm.maxHwLevels;

    for (int op = 0; op < kOpsPerConfig; ++op) {
        HtmContext& ctx = h.m.cpu(static_cast<int>(rng.below(kCpus))).htm();
        const std::uint64_t pick = rng.below(100);

        if (!ctx.inTx()) {
            // Out of a transaction the only moves are begin or (rarely)
            // a full reset of some context.
            if (pick < 95) {
                ctx.begin(pick % 8 == 0 ? TxKind::Open : TxKind::Closed,
                          static_cast<Tick>(op));
            } else {
                ctx.resetAll();
            }
        } else if (pick < 10 && ctx.depth() < maxHw) {
            ctx.begin(pick % 2 ? TxKind::Open : TxKind::Closed,
                      static_cast<Tick>(op));
        } else if (pick < 45) {
            ctx.specRead(h.randomWord(rng));
        } else if (pick < 70) {
            ctx.specWrite(h.randomWord(rng), rng.next());
        } else if (pick < 76) {
            ctx.releaseLine(h.randomWord(rng));
        } else if (pick < 80) {
            if (ctx.top().status != TxStatus::Validated)
                ctx.setTopValidated();
        } else if (pick < 88) {
            // Commit the innermost transaction the way the Cpu would.
            if (ctx.depth() >= 2 && ctx.top().kind == TxKind::Closed) {
                ctx.commitClosedTop();
            } else if (ctx.depth() == 1 ||
                       ctx.top().kind == TxKind::Open) {
                ctx.commitTopToMemory();
                ctx.popCommittedTop();
            }
        } else if (pick < 95) {
            ctx.rollbackTo(
                static_cast<int>(rng.range(1,
                                           static_cast<std::uint64_t>(
                                               ctx.depth()))));
        } else if (pick < 97) {
            ctx.clearTopSets();
        } else {
            // A capacity eviction: affects only the overflow flag, the
            // authoritative sets (and thus the index) must not move.
            ctx.noteEviction(EvictInfo{true, h.base, true});
        }

        ASSERT_TRUE(h.checkAll()) << "after op " << op;
    }

    // Drain every context and confirm the index empties with them.
    for (int c = 0; c < kCpus; ++c) {
        HtmContext& ctx = h.m.cpu(c).htm();
        if (ctx.inTx())
            ctx.rollbackTo(1);
    }
    ASSERT_TRUE(h.checkAll());
    EXPECT_EQ(h.m.memSystem().detector().indexedUnitCount(), 0u);
}

} // namespace

TEST(ConflictIndex, RandomOpsLazyWriteBufferLine)
{
    runRandomOps(HtmConfig::paperLazy(), 0xC0FFEE01ull);
}

TEST(ConflictIndex, RandomOpsEagerUndoLogLine)
{
    runRandomOps(HtmConfig::eagerUndoLog(), 0xC0FFEE02ull);
}

TEST(ConflictIndex, RandomOpsLazyWordGranularity)
{
    HtmConfig cfg = HtmConfig::paperLazy();
    cfg.granularity = TrackGranularity::Word;
    runRandomOps(cfg, 0xC0FFEE03ull);
}

TEST(ConflictIndex, RandomOpsEagerOlderWins)
{
    HtmConfig cfg = HtmConfig::eagerUndoLog();
    cfg.policy = ConflictPolicy::OlderWins;
    runRandomOps(cfg, 0xC0FFEE04ull);
}

/** The detector's query paths must see exactly what the index holds:
 *  a broadcast violates precisely the brute-force reader set. */
TEST(ConflictIndex, BroadcastMatchesBruteForce)
{
    Harness h(HtmConfig::paperLazy());
    Rng rng(0xBEEF);
    ConflictDetector& det = h.m.memSystem().detector();

    for (int round = 0; round < 200; ++round) {
        for (int c = 0; c < kCpus; ++c) {
            HtmContext& ctx = h.m.cpu(c).htm();
            ctx.begin(TxKind::Closed, static_cast<Tick>(round));
            for (int i = 0; i < 6; ++i)
                ctx.specRead(h.randomWord(rng));
        }
        HtmContext& committer = h.m.cpu(0).htm();
        for (int i = 0; i < 4; ++i)
            committer.specWrite(h.randomWord(rng), 1);

        // Expected victims via brute-force scan, before broadcasting.
        std::vector<std::uint32_t> expected(kCpus, 0);
        const std::vector<Addr> lines = committer.topWriteLines();
        for (int c = 1; c < kCpus; ++c) {
            HtmContext& ctx = h.m.cpu(c).htm();
            for (Addr line : lines)
                expected[static_cast<size_t>(c)] |=
                    ctx.levelsReadingScan(line) & ~ctx.validatedLevelsScan();
        }

        det.broadcastWriteSet(committer, lines);
        for (int c = 1; c < kCpus; ++c) {
            EXPECT_EQ(h.m.cpu(c).htm().xvcurrent(),
                      expected[static_cast<size_t>(c)])
                << "round " << round << " cpu " << c;
        }
        for (int c = 0; c < kCpus; ++c) {
            h.m.cpu(c).htm().rollbackTo(1);
            h.m.cpu(c).htm().clearCurrentViolations();
        }
        ASSERT_TRUE(h.checkAll());
    }
}
