/**
 * @file
 * Bounded-capacity HTM: per-level read/write-set caps, the capacity
 * abort/virtualise restart cycle (XTM abort-once-then-software), the
 * software-overflow spill path (VTM), eviction-triggered capacity
 * aborts, and the interaction of caps with nesting (child merge,
 * open-nested commit). Includes the overflow-check penalty pinning
 * test for the conflict detector.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/machine.hh"
#include "htm/htm_context.hh"
#include "mem/backing_store.hh"
#include "runtime/tx_thread.hh"
#include "sim/stats.hh"

using namespace tmsim;

namespace {

HtmConfig
cappedConfig(int rcap, int wcap, CapacityMode mode)
{
    HtmConfig cfg = HtmConfig::paperLazy();
    cfg.rsetCap = rcap;
    cfg.wsetCap = wcap;
    cfg.capacityMode = mode;
    return cfg;
}

/** Direct HtmContext fixture — no Machine, no timing. */
struct Fixture
{
    StatsRegistry stats;
    BackingStore mem{1 << 20};
    HtmContext ctx;

    explicit Fixture(HtmConfig cfg = HtmConfig::paperLazy())
        : ctx(0, cfg, mem, nullptr, nullptr, stats)
    {
    }

    std::uint64_t
    counter(const char* name)
    {
        return stats.counter(name).value();
    }
};

MachineConfig
machineConfig(HtmConfig htm, int cpus)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 16 * 1024 * 1024;
    return cfg;
}

/** N distinct line addresses (64-byte stride). */
Addr
line(int i)
{
    return 0x10000 + static_cast<Addr>(i) * 64;
}

} // namespace

// --- unit: cap enforcement and the virtualised retry ---------------------

TEST(CapacityUnit, UnboundedDefaultNeverAborts)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 1);
    for (int i = 0; i < 64; ++i)
        f.ctx.specRead(line(i));
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_FALSE(f.ctx.capacityVirtualized());
    EXPECT_FALSE(f.ctx.overflowed());
    EXPECT_EQ(f.ctx.spilledLineCount(), 0u);
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 0u);
}

TEST(CapacityUnit, ReadCapRaisesOneCapacityAbortThenVirtualises)
{
    Fixture f(cappedConfig(2, 0, CapacityMode::Abort));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.specRead(line(1));
    // At the cap: no violation yet.
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    f.ctx.specRead(line(2));
    // Over the cap: a self-raised violation against level 1.
    EXPECT_NE(f.ctx.xvcurrent(), 0u);
    EXPECT_TRUE(f.ctx.capacityVirtualized());
    EXPECT_TRUE(f.ctx.takeCapacityRestart());
    EXPECT_FALSE(f.ctx.takeCapacityRestart()); // consumed
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 1u);

    // The restarted attempt runs virtualised: caps lifted, over-cap
    // lines spill to the overflow log instead of aborting again.
    f.ctx.rollbackTo(1);
    EXPECT_TRUE(f.ctx.capacityVirtualized()); // survives rollback
    f.ctx.begin(TxKind::Closed, 2);
    for (int i = 0; i < 4; ++i)
        f.ctx.specRead(line(i));
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 1u);
    EXPECT_EQ(f.ctx.spilledLineCount(), 2u);
    EXPECT_TRUE(f.ctx.overflowed());
    EXPECT_GE(f.counter("htm.capacity_spills"), 2u);

    // Outer commit ends the virtualised episode.
    f.ctx.setTopValidated();
    f.ctx.commitTopToMemory();
    f.ctx.popCommittedTop();
    EXPECT_FALSE(f.ctx.capacityVirtualized());
    EXPECT_EQ(f.ctx.spilledLineCount(), 0u);
}

TEST(CapacityUnit, WriteCapInOverflowModeSpillsWithoutAborting)
{
    Fixture f(cappedConfig(0, 1, CapacityMode::Overflow));
    f.ctx.begin(TxKind::Closed, 1);
    for (int i = 0; i < 3; ++i)
        f.ctx.specWrite(line(i), 7);
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_EQ(f.ctx.xvpending(), 0u);
    EXPECT_FALSE(f.ctx.capacityVirtualized());
    EXPECT_EQ(f.ctx.spilledLineCount(), 2u);
    EXPECT_TRUE(f.ctx.overflowed());
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 0u);
    EXPECT_EQ(f.counter("htm.capacity_spills"), 2u);
}

TEST(CapacityUnit, SequenceAbandonmentClearsVirtualisation)
{
    Fixture f(cappedConfig(1, 0, CapacityMode::Abort));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.specRead(line(1));
    EXPECT_TRUE(f.ctx.capacityVirtualized());
    f.ctx.rollbackTo(1);
    f.ctx.noteSequenceAbandoned();
    EXPECT_FALSE(f.ctx.capacityVirtualized());
    EXPECT_FALSE(f.ctx.takeCapacityRestart());
}

// --- unit: nesting interactions ------------------------------------------

TEST(CapacityUnit, ChildMergeRechecksParentCap)
{
    Fixture f(cappedConfig(2, 0, CapacityMode::Abort));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.specRead(line(1)); // parent at cap
    f.ctx.begin(TxKind::Closed, 2);
    f.ctx.specRead(line(2));
    f.ctx.specRead(line(3)); // child at cap
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 0u);

    // The merged parent read-set (4 lines) exceeds the cap: the merge
    // must re-check and raise a capacity abort.
    f.ctx.commitClosedTop();
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 1u);
    EXPECT_TRUE(f.ctx.capacityVirtualized());
    EXPECT_NE(f.ctx.xvcurrent(), 0u);
}

TEST(CapacityUnit, OpenNestedCommitReleasesCapacity)
{
    Fixture f(cappedConfig(2, 0, CapacityMode::Overflow));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.specRead(line(1));
    f.ctx.begin(TxKind::Open, 2);
    for (int i = 2; i < 5; ++i)
        f.ctx.specRead(line(i));
    EXPECT_EQ(f.ctx.spilledLineCount(), 1u); // open level: 3 > 2

    // Open-nested commit discards the open level's sets entirely —
    // the spilled footprint must be released with them.
    f.ctx.setTopValidated();
    f.ctx.commitTopToMemory();
    f.ctx.popCommittedTop();
    EXPECT_EQ(f.ctx.depth(), 1);
    EXPECT_EQ(f.ctx.spilledLineCount(), 0u);
    EXPECT_FALSE(f.ctx.overflowed());
}

TEST(CapacityUnit, PartialRollbackReleasesInnerSpills)
{
    Fixture f(cappedConfig(2, 0, CapacityMode::Overflow));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.begin(TxKind::Closed, 2);
    for (int i = 1; i < 5; ++i)
        f.ctx.specRead(line(i));
    EXPECT_EQ(f.ctx.spilledLineCount(), 2u);

    // Rolling back the inner level discards its sets; the overflow
    // log (derived from surviving levels) shrinks with them.
    f.ctx.rollbackTo(2);
    EXPECT_EQ(f.ctx.depth(), 1);
    EXPECT_EQ(f.ctx.spilledLineCount(), 0u);
}

// --- unit: eviction-triggered capacity aborts ----------------------------

TEST(CapacityUnit, TransactionalEvictionAbortsInAbortMode)
{
    Fixture f(cappedConfig(64, 64, CapacityMode::Abort));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.noteEviction(EvictInfo{true, line(0), true});
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 1u);
    EXPECT_TRUE(f.ctx.capacityVirtualized());
    EXPECT_NE(f.ctx.xvcurrent(), 0u);

    // A second eviction while virtualised must not re-abort.
    f.ctx.noteEviction(EvictInfo{true, line(1), true});
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 1u);
}

TEST(CapacityUnit, TransactionalEvictionOnlyCountsWhenUnbounded)
{
    // Historical behaviour: with no caps configured, an eviction of
    // transactional state never aborts — it just marks the context
    // overflowed (checked at extra cost by peers).
    Fixture f;
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.noteEviction(EvictInfo{true, line(0), true});
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_TRUE(f.ctx.overflowed());
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 0u);

    // Non-transactional evictions are ignored entirely.
    Fixture g(cappedConfig(1, 1, CapacityMode::Abort));
    g.ctx.begin(TxKind::Closed, 1);
    g.ctx.noteEviction(EvictInfo{true, line(0), false});
    g.ctx.noteEviction(EvictInfo{false, line(1), true});
    EXPECT_EQ(g.counter("cpu0.htm.capacity_aborts"), 0u);
    EXPECT_FALSE(g.ctx.overflowed());
}

TEST(CapacityUnit, TransactionalEvictionSpillsInOverflowMode)
{
    Fixture f(cappedConfig(64, 64, CapacityMode::Overflow));
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specRead(line(0));
    f.ctx.noteEviction(EvictInfo{true, line(0), true});
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_TRUE(f.ctx.overflowed());
    EXPECT_EQ(f.counter("cpu0.htm.capacity_aborts"), 0u);
}

// --- machine: the full abort/virtualise/commit cycle ---------------------

TEST(CapacityMachine, AbortModeTakesExactlyOneCapacityRestart)
{
    Machine m(machineConfig(cappedConfig(4, 4, CapacityMode::Abort), 1));
    m.logContext().quiet = true;
    TxThread t0(m.cpu(0));

    Word sum = 0;
    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        for (int i = 0; i < 8; ++i)
            m.memory().write(line(i), static_cast<Word>(i + 1));
        out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            sum = 0;
            for (int i = 0; i < 8; ++i)
                sum += co_await t.ld(line(i));
        });
    });
    m.run();
    ASSERT_TRUE(m.allDone());

    // One capacity abort, then the virtualised retry fits and commits.
    EXPECT_TRUE(out.committed());
    EXPECT_EQ(out.retries, 1);
    EXPECT_EQ(sum, 36u);
    EXPECT_EQ(m.stats().counter("cpu0.htm.capacity_aborts").value(), 1u);
    EXPECT_EQ(m.stats().counter("cpu0.htm.capacity_restarts").value(), 1u);
    // The retry read 8 lines against a cap of 4: 4 spilled.
    EXPECT_EQ(m.stats().counter("htm.capacity_spills").value(), 4u);
}

TEST(CapacityMachine, OverflowModeCommitsFirstTime)
{
    Machine m(machineConfig(cappedConfig(4, 4, CapacityMode::Overflow), 1));
    m.logContext().quiet = true;
    TxThread t0(m.cpu(0));

    Word sum = 0;
    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        for (int i = 0; i < 8; ++i)
            m.memory().write(line(i), static_cast<Word>(i + 1));
        out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            sum = 0;
            for (int i = 0; i < 8; ++i)
                sum += co_await t.ld(line(i));
        });
    });
    m.run();
    ASSERT_TRUE(m.allDone());

    EXPECT_TRUE(out.committed());
    EXPECT_EQ(out.retries, 0);
    EXPECT_EQ(sum, 36u);
    EXPECT_EQ(m.stats().counter("cpu0.htm.capacity_aborts").value(), 0u);
    EXPECT_EQ(m.stats().counter("cpu0.htm.capacity_restarts").value(), 0u);
    EXPECT_EQ(m.stats().counter("htm.capacity_spills").value(), 4u);
}

// --- machine: overflow-check penalty pinning (PR 8 satellite) ------------

namespace {

/** One transactional load on CPU 0 under eager detection; returns the
 *  final tick. When @p overflow_peer, CPU 1's context is marked
 *  overflowed first (an evicted transactional line), so CPU 0's
 *  first-access check must consult its overflow structures. */
Tick
eagerLoadTicks(bool overflow_peer, std::uint64_t* checks_out = nullptr)
{
    Machine m(machineConfig(HtmConfig::eagerUndoLog(), 2));
    m.logContext().quiet = true;
    TxThread t0(m.cpu(0));

    if (overflow_peer)
        m.cpu(1).htm().noteEviction(EvictInfo{true, 0x40, true});

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.ld(line(0));
        });
    });
    const Tick end = m.run();
    if (checks_out)
        *checks_out = m.stats().counter("htm.overflow_checks").value();
    return end;
}

} // namespace

TEST(CapacityMachine, OverflowCheckPenaltyChargedAndCounted)
{
    std::uint64_t baseChecks = 0, overflowChecks = 0;
    const Tick base = eagerLoadTicks(false, &baseChecks);
    const Tick slow = eagerLoadTicks(true, &overflowChecks);

    // Exactly one first-access check ran, so exactly one consult was
    // charged: overflowCheckPenalty (8) extra cycles, one counter tick.
    EXPECT_EQ(baseChecks, 0u);
    EXPECT_EQ(overflowChecks, 1u);
    EXPECT_EQ(slow - base, HtmConfig().overflowCheckPenalty);
}
