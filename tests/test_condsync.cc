/**
 * @file
 * Conditional synchronisation (paper figure 3 / section 7.3): the
 * scheduler transaction with its continuing violation handler, worker
 * watch/retry, wake-ups on producer commits, and producer/consumer
 * pipelines.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine.hh"
#include "runtime/cond_sched.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 16 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(CondSync, ConsumerWakesWhenProducerCommits)
{
    Machine m(config(3));
    CondScheduler sched(m.memory(), 2);
    TxThread tSched(m.cpu(0));
    TxThread tCons(m.cpu(1));
    TxThread tProd(m.cpu(2));
    sched.addWorker(0, &tCons);
    Addr flag = m.memory().allocate(64);
    Word consumed = 0;
    int bodyRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, 2);
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        co_await tCons.atomic([&](TxThread& t) -> SimTask {
            ++bodyRuns;
            Word v = co_await sched.loadOrRetry(
                t, 0, flag, [](Word w) { return w != 0; });
            consumed = v;
            co_await t.st(flag, 0); // consume
        });
        co_await sched.workerDone(tCons);
    });
    m.spawn(2, [&](Cpu&) -> SimTask {
        co_await m.cpu(2).exec(5000); // let the consumer block first
        co_await tProd.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(flag, 42); });
        co_await sched.workerDone(tProd);
    });

    m.run();
    EXPECT_EQ(consumed, 42u);
    EXPECT_GE(bodyRuns, 2); // blocked at least once
    EXPECT_GE(sched.wakeups(), 1u);
    EXPECT_GE(sched.schedulerViolations(), 1u);
    EXPECT_EQ(m.memory().read(flag), 0u);
}

TEST(CondSync, NoBlockWhenConditionAlreadyTrue)
{
    Machine m(config(2));
    CondScheduler sched(m.memory(), 1);
    TxThread tSched(m.cpu(0));
    TxThread tCons(m.cpu(1));
    sched.addWorker(0, &tCons);
    Addr flag = m.memory().allocate(64);
    m.memory().write(flag, 7);
    int bodyRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, 1);
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        co_await tCons.atomic([&](TxThread& t) -> SimTask {
            ++bodyRuns;
            Word v = co_await sched.loadOrRetry(
                t, 0, flag, [](Word w) { return w != 0; });
            EXPECT_EQ(v, 7u);
        });
        co_await sched.workerDone(tCons);
    });
    m.run();
    EXPECT_EQ(bodyRuns, 1);
    EXPECT_EQ(sched.wakeups(), 0u);
}

TEST(CondSync, ProducerConsumerPipelineTransfersAllItems)
{
    // Bounded single-slot mailbox between one producer and one
    // consumer, both using watch/retry in both directions.
    constexpr int items = 10;
    Machine m(config(3));
    CondScheduler sched(m.memory(), 2);
    TxThread tSched(m.cpu(0));
    TxThread tProd(m.cpu(1));
    TxThread tCons(m.cpu(2));
    sched.addWorker(0, &tProd);
    sched.addWorker(1, &tCons);

    Addr slot = m.memory().allocate(64);  // 0 = empty, else item
    std::vector<Word> received;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, 2);
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        for (int i = 1; i <= items; ++i) {
            co_await tProd.atomic([&, i](TxThread& t) -> SimTask {
                co_await sched.loadOrRetry(t, 0, slot,
                                           [](Word w) { return w == 0; });
                co_await t.st(slot, static_cast<Word>(i));
            });
        }
        co_await sched.workerDone(tProd);
    });
    m.spawn(2, [&](Cpu&) -> SimTask {
        for (int i = 0; i < items; ++i) {
            Word got = 0;
            co_await tCons.atomic([&](TxThread& t) -> SimTask {
                got = co_await sched.loadOrRetry(
                    t, 1, slot, [](Word w) { return w != 0; });
                co_await t.st(slot, 0);
            });
            received.push_back(got);
        }
        co_await sched.workerDone(tCons);
    });

    m.run();
    ASSERT_EQ(received.size(), static_cast<size_t>(items));
    for (int i = 0; i < items; ++i)
        EXPECT_EQ(received[static_cast<size_t>(i)],
                  static_cast<Word>(i + 1));
}

TEST(CondSync, MultipleConsumersAllWake)
{
    // One producer writes a broadcast flag; every watcher must wake.
    constexpr int consumers = 3;
    Machine m(config(consumers + 2));
    CondScheduler sched(m.memory(), consumers);
    TxThread tSched(m.cpu(0));
    std::vector<std::unique_ptr<TxThread>> cons;
    for (int i = 0; i < consumers; ++i) {
        cons.push_back(std::make_unique<TxThread>(m.cpu(i + 1)));
        sched.addWorker(i, cons.back().get());
    }
    TxThread tProd(m.cpu(consumers + 1));
    Addr flag = m.memory().allocate(64);
    int woken = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, consumers + 1);
    });
    for (int i = 0; i < consumers; ++i) {
        m.spawn(i + 1, [&, i](Cpu&) -> SimTask {
            TxThread& t = *cons[static_cast<size_t>(i)];
            co_await t.atomic([&](TxThread& th) -> SimTask {
                co_await sched.loadOrRetry(th, i, flag,
                                           [](Word w) { return w != 0; });
            });
            ++woken;
            co_await sched.workerDone(t);
        });
    }
    m.spawn(consumers + 1, [&](Cpu& c) -> SimTask {
        co_await c.exec(8000);
        co_await tProd.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(flag, 1); });
        co_await sched.workerDone(tProd);
    });

    m.run();
    EXPECT_EQ(woken, consumers);
    EXPECT_GE(sched.wakeups(), static_cast<std::uint64_t>(consumers));
}

TEST(CondSync, CancelRemovesStaleWatch)
{
    // A consumer that is violated after watching (but before parking)
    // publishes CANCEL (figure 3's cancel handler); the scheduler must
    // drop the stale watch and the retry must re-watch cleanly.
    Machine m(config(3));
    CondScheduler sched(m.memory(), 2);
    TxThread tSched(m.cpu(0));
    TxThread tCons(m.cpu(1));
    TxThread tProd(m.cpu(2));
    sched.addWorker(0, &tCons);
    Addr flag = m.memory().allocate(64);
    Addr poison = m.memory().allocate(64);
    int bodyRuns = 0;
    Word consumed = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, 2);
    });
    m.spawn(1, [&](Cpu&) -> SimTask {
        co_await tCons.atomic([&](TxThread& t) -> SimTask {
            ++bodyRuns;
            // Reads 'poison' so the producer can violate us between
            // watch and park on the first attempt.
            co_await t.ld(poison);
            consumed = co_await sched.loadOrRetry(
                t, 0, flag, [](Word w) { return w != 0; });
        });
        co_await sched.workerDone(tCons);
    });
    m.spawn(2, [&](Cpu& c) -> SimTask {
        // First violate the consumer through 'poison'...
        co_await c.exec(3000);
        co_await tProd.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(poison, 1); });
        // ...then eventually satisfy the condition.
        co_await c.exec(6000);
        co_await tProd.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(flag, 5); });
        co_await sched.workerDone(tProd);
    });
    m.run();
    EXPECT_EQ(consumed, 5u);
    EXPECT_GE(bodyRuns, 2);
}

TEST(CondSync, WakeBeforeParkIsNotLost)
{
    // The producer may commit between the consumer's watch and its
    // park; the pending-wake mechanism must absorb the race.
    Machine m(config(3));
    CondScheduler sched(m.memory(), 2);
    TxThread tSched(m.cpu(0));
    TxThread tCons(m.cpu(1));
    TxThread tProd(m.cpu(2));
    sched.addWorker(0, &tCons);
    Addr flag = m.memory().allocate(64);
    Word consumed = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await sched.schedulerBody(tSched, 2);
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(50);
        co_await tCons.atomic([&](TxThread& t) -> SimTask {
            consumed = co_await sched.loadOrRetry(
                t, 0, flag, [](Word w) { return w != 0; });
        });
        co_await sched.workerDone(tCons);
    });
    m.spawn(2, [&](Cpu& c) -> SimTask {
        co_await c.exec(60); // land right on top of the watch window
        co_await tProd.atomic(
            [&](TxThread& t) -> SimTask { co_await t.st(flag, 9); });
        co_await sched.workerDone(tProd);
    });
    m.run();
    EXPECT_EQ(consumed, 9u);
}
